"""Measured per-unit cost model for the parallel scheduler.

The executor submits uncached work units longest-first (LPT), which
needs an estimate of each unit's serial wall time.  This module persists
the *measured* wall seconds of every executed unit as ``costs.json``
alongside the result cache, so the second run schedules from real data
for this machine instead of the hand-recorded reference table in
:mod:`repro.runner.workunits` (which remains the cold-start fallback).

Costs are scheduling hints only: staleness or loss degrades pool
balance, never correctness — assembly consumes parts by unit position
regardless of completion order.  The file is written atomically via
rename and an unreadable file is treated as empty, the same contract the
result cache honours for its entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Mapping, Optional

#: File name of the persisted cost table, under the cache directory.
COSTS_FILE_NAME = "costs.json"


class CostModel:
    """Per-unit measured wall seconds, persisted as ``costs.json``.

    ``path=None`` makes the model a no-op (empty, never writes) — used
    when caching is disabled and there is no cache directory to live in.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._costs: Optional[Dict[str, float]] = None

    @classmethod
    def for_cache(cls, cache) -> "CostModel":
        """The cost model stored alongside *cache* (no-op when disabled)."""
        if not cache.enabled:
            return cls(None)
        return cls(os.path.join(cache.path, COSTS_FILE_NAME))

    @property
    def costs(self) -> Dict[str, float]:
        """unit id -> last measured wall seconds (lazy-loaded)."""
        if self._costs is None:
            self._costs = self._load()
        return self._costs

    def _load(self) -> Dict[str, float]:
        if self.path is None:
            return {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = json.load(fh)
            return {
                str(unit_id): float(wall)
                for unit_id, wall in raw.items()
                if isinstance(wall, (int, float))
            }
        except (OSError, ValueError, AttributeError):
            return {}

    def cost_for(self, unit_id: str) -> Optional[float]:
        return self.costs.get(unit_id)

    def record(self, walls: Mapping[str, float]) -> None:
        """Merge measured *walls* (unit id -> seconds) and persist.

        Last measurement wins; entries for units not in *walls* are
        kept, so a partial run (``--only``) never forgets the costs of
        the experiments it skipped.  The write is atomic (temp file +
        rename) and best-effort: a read-only cache directory downgrades
        the model to in-memory, it never fails the run.
        """
        if not walls:
            return
        merged = dict(self.costs)
        for unit_id, wall in walls.items():
            merged[unit_id] = round(float(wall), 3)
        self._costs = merged
        if self.path is None:
            return
        payload = json.dumps(dict(sorted(merged.items())), indent=1)
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
