"""Process-pool execution of experiment work units.

The executor builds the work-unit plans for the selected experiments,
resolves cache hits, fans the remaining units out over ``jobs`` worker
processes, and reassembles each experiment's result **in canonical
registry order** in the parent.  Scheduling order therefore never
affects output: every unit is a pure function of its arguments (the
simulation engine is deterministic and each shard seeds its own RNG
streams), and assembly consumes parts by unit position, not completion
order.  ``jobs=1`` runs the identical plans in-process — the parallel
path differs only in *where* units execute.

Workers are forked (POSIX) so they inherit ``sys.path`` and the warmed
import state; on platforms without fork the default start method is
used and units re-import :mod:`repro` from the worker's interpreter.

Two scheduling rules keep the pool from losing to the serial path:

- Units are submitted **longest first** (LPT order).  The estimates
  come from the measured cost model persisted as ``costs.json``
  alongside the cache (:mod:`repro.runner.costs`), refreshed after
  every run; the hand-recorded table in :mod:`repro.runner.workunits`
  seeds the first run.  A straggler like fig5b's heaviest scheduler
  shard therefore starts immediately instead of serialising behind
  cheap units at the tail of the run.
- The worker count is capped at the host's CPU count.  When that cap
  (or the miss count) leaves a single effective worker, the pool is
  skipped entirely and units run in-process — ``--jobs N`` on a
  one-CPU host is then *identical* to the serial path instead of
  paying fork/pickle overhead for no parallelism.  Set
  ``REPRO_RUNNER_FORCE_POOL=1`` to keep the pool regardless (the
  determinism harness uses it to exercise true cross-process merges).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache, disabled_cache
from .costs import CostModel
from .workunits import (
    ExperimentPlan,
    WorkUnit,
    build_plans,
    execute_unit,
    ordered_by_cost,
)


@dataclass
class ExperimentReport:
    """Merged output and execution accounting of one experiment."""

    experiment_id: str
    rows: List[dict]
    summary: str
    units: int
    cached_units: int
    #: Summed wall time of the units actually executed (cache hits cost 0);
    #: under ``jobs>1`` this is CPU-side cost, not elapsed time.
    unit_wall_s: float
    #: Per-unit wall seconds in plan order (cache hits report 0.0).
    unit_walls: Dict[str, float]


@dataclass
class RunReport:
    """The full run: per-experiment reports in canonical registry order."""

    reports: List[ExperimentReport]
    wall_s: float
    jobs: int
    cache_hits: int
    cache_misses: int
    cache_writes: int

    def report_for(self, experiment_id: str) -> ExperimentReport:
        for report in self.reports:
            if report.experiment_id == experiment_id:
                return report
        raise KeyError(experiment_id)


def _timed_execute(unit: WorkUnit) -> Tuple[Any, float]:
    """Worker body: run one unit, returning its part and wall time."""
    started = time.perf_counter()
    part = execute_unit(unit)
    return part, time.perf_counter() - started


def _pool_context():
    """Prefer fork so workers inherit imports; fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _effective_workers(jobs: int, misses: int) -> int:
    """Workers that can actually run concurrently for this miss set."""
    effective = min(jobs, misses)
    if os.environ.get("REPRO_RUNNER_FORCE_POOL", "") not in ("", "0"):
        return effective
    return min(effective, os.cpu_count() or 1)


def _execute_misses(
    misses: List[WorkUnit],
    jobs: int,
    echo: Optional[Callable[[str], None]],
    measured: Optional[Dict[str, float]] = None,
) -> Dict[WorkUnit, Tuple[Any, float]]:
    """Run the uncached units, in-process or across the pool."""
    results: Dict[WorkUnit, Tuple[Any, float]] = {}
    if not misses:
        return results
    if jobs <= 1 or _effective_workers(jobs, len(misses)) <= 1:
        for unit in misses:
            results[unit] = _timed_execute(unit)
            if echo:
                echo(f"ran {unit.unit_id} ({results[unit][1]:.1f}s)")
        return results
    with ProcessPoolExecutor(
        max_workers=_effective_workers(jobs, len(misses)),
        mp_context=_pool_context(),
    ) as pool:
        # LPT submission: heaviest units first, so the expensive shards
        # never start behind a tail of cheap ones.  Completion order is
        # irrelevant to output — assembly consumes parts by position.
        pending = {
            pool.submit(_timed_execute, unit): unit
            for unit in ordered_by_cost(misses, measured)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                unit = pending.pop(future)
                results[unit] = future.result()
                if echo:
                    echo(f"ran {unit.unit_id} ({results[unit][1]:.1f}s)")
    return results


def execute_plan(
    plan: ExperimentPlan,
    jobs: int = 1,
    echo: Optional[Callable[[str], None]] = None,
) -> Any:
    """Run one plan's units (uncached) and assemble its result.

    The generic entry point for plans that live outside the experiment
    registry (e.g. the telemetry probe): units fan out exactly like
    registry experiments, and assembly consumes parts in canonical unit
    order, so the result is independent of scheduling.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results = _execute_misses(list(plan.units), jobs, echo)
    return plan.assemble([results[unit][0] for unit in plan.units])


def run_experiments(
    ids: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    echo: Optional[Callable[[str], None]] = None,
    seed: Optional[int] = None,
) -> RunReport:
    """Run experiments (default: the whole registry) and merge their output.

    ``cache=None`` disables caching; pass a :class:`ResultCache` to skip
    unchanged work units on re-runs.  *seed* overrides the RNG seed of
    seed-taking experiments (the robustness family); it feeds the unit
    kwargs and hence the cache key, so differently-seeded runs never
    collide in the cache.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cache = cache if cache is not None else disabled_cache()
    costs = CostModel.for_cache(cache)
    started = time.perf_counter()

    plans = build_plans(ids, seed=seed)
    all_units = [unit for plan in plans for unit in plan.units]

    parts: Dict[WorkUnit, Any] = {}
    walls: Dict[WorkUnit, float] = {}
    cached_units: set = set()
    misses: List[WorkUnit] = []
    for unit in all_units:
        hit, part = cache.get(unit)
        if hit:
            parts[unit] = part
            walls[unit] = 0.0
            cached_units.add(unit)
        else:
            misses.append(unit)
    if echo and cached_units:
        echo(f"cache: {len(cached_units)}/{len(all_units)} units reused")

    executed = _execute_misses(misses, jobs, echo, measured=costs.costs)
    for unit, (part, wall) in executed.items():
        parts[unit] = part
        walls[unit] = wall
        cache.put(unit, part)
    # Refresh the persisted cost model with this run's measurements, so
    # the next run's LPT order schedules from this machine's real walls.
    costs.record({unit.unit_id: wall for unit, (_, wall) in executed.items()})

    reports: List[ExperimentReport] = []
    for plan in plans:
        result = plan.assemble([parts[unit] for unit in plan.units])
        reports.append(
            ExperimentReport(
                experiment_id=plan.experiment_id,
                rows=result.rows(),
                summary=result.summary(),
                units=len(plan.units),
                cached_units=sum(1 for u in plan.units if u in cached_units),
                unit_wall_s=sum(walls[u] for u in plan.units),
                unit_walls={u.unit_id: walls[u] for u in plan.units},
            )
        )

    report = RunReport(
        reports=reports,
        wall_s=time.perf_counter() - started,
        jobs=jobs,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        cache_writes=cache.writes,
    )
    cache.record_last_run(
        {
            "hits": cache.hits,
            "misses": cache.misses,
            "writes": cache.writes,
            "jobs": jobs,
            "wall_s": round(report.wall_s, 3),
            "units": len(all_units),
        }
    )
    return report
