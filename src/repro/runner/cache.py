"""Content-addressed result cache for experiment work units.

Each cache entry stores the pickled part produced by one
:class:`~repro.runner.workunits.WorkUnit`.  The entry's key is the
SHA-256 of the unit's full input description — experiment id, unit id,
function path, keyword arguments — plus a *code-version salt* hashed
over every ``*.py`` file of the :mod:`repro` package.  Because the
simulation is deterministic, those inputs fully determine the output, so
a key hit can substitute for a run; because the salt covers the code,
any source change (even to a transitively imported module) invalidates
the whole cache rather than risking stale results.

Layout on disk (default ``.repro_cache/`` under the working directory)::

    .repro_cache/
      ab/abcdef....pkl      # two-level fan-out by key prefix

Entries are self-describing (unit id + function path ride along with the
part) and written atomically via rename, so a crashed run never leaves a
truncated entry that parses.  Corrupt or unreadable entries are treated
as misses and deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

from .workunits import WorkUnit

#: Default cache directory name, created under the current working directory.
CACHE_DIR_NAME = ".repro_cache"

_SALT_CACHE: dict = {}


def code_salt(package_root: Optional[str] = None) -> str:
    """Hash of every ``*.py`` file of the repro package (path + content).

    File order is normalised (sorted relative paths) and mtimes are
    ignored, so the salt is stable across checkouts and only moves when
    source text actually changes.
    """
    if package_root is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    package_root = os.path.abspath(package_root)
    cached = _SALT_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    entries = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                entries.append((os.path.relpath(path, package_root), path))
    for relpath, path in sorted(entries):
        digest.update(relpath.encode())
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    salt = digest.hexdigest()
    _SALT_CACHE[package_root] = salt
    return salt


class ResultCache:
    """Persistent work-unit result store with hit/miss accounting.

    ``enabled=False`` turns the cache into a no-op (``--no-cache``);
    ``refresh=True`` ignores existing entries on read but still writes
    fresh ones (``--refresh``).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        enabled: bool = True,
        refresh: bool = False,
        salt: Optional[str] = None,
    ) -> None:
        self.path = os.path.abspath(path or os.path.join(os.getcwd(), CACHE_DIR_NAME))
        self.enabled = enabled
        self.refresh = refresh
        self._salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def salt(self) -> str:
        if self._salt is None:
            self._salt = code_salt()
        return self._salt

    def key(self, unit: WorkUnit) -> str:
        return unit.fingerprint(self.salt)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], f"{key}.pkl")

    def get(self, unit: WorkUnit) -> Tuple[bool, Any]:
        """Look up *unit*; returns ``(hit, part)`` (part is None on miss)."""
        if not self.enabled or self.refresh:
            if self.enabled:
                self.misses += 1
            return (False, None)
        entry_path = self._entry_path(self.key(unit))
        try:
            with open(entry_path, "rb") as fh:
                entry = pickle.load(fh)
            if entry.get("unit_id") != unit.unit_id:
                raise ValueError("cache key collision")
            self.hits += 1
            return (True, entry["part"])
        except FileNotFoundError:
            self.misses += 1
            return (False, None)
        except Exception:
            # Corrupt/incompatible entry: drop it and recompute.
            try:
                os.unlink(entry_path)
            except OSError:
                pass
            self.misses += 1
            return (False, None)

    def put(self, unit: WorkUnit, part: Any) -> None:
        """Store *unit*'s part (atomic write; no-op when disabled)."""
        if not self.enabled:
            return
        entry_path = self._entry_path(self.key(unit))
        os.makedirs(os.path.dirname(entry_path), exist_ok=True)
        blob = pickle.dumps(
            {
                "experiment_id": unit.experiment_id,
                "unit_id": unit.unit_id,
                "fn": unit.fn,
                "part": part,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(entry_path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_path, entry_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.writes += 1


def disabled_cache() -> ResultCache:
    """A cache that neither reads nor writes (and never hashes sources)."""
    return ResultCache(enabled=False, salt="")
