"""Content-addressed result cache for experiment work units.

Each cache entry stores the pickled part produced by one
:class:`~repro.runner.workunits.WorkUnit`.  The entry's key is the
SHA-256 of the unit's full input description — experiment id, unit id,
function path, keyword arguments — plus a *code-version salt*.

The salt is dependency-aware: :func:`unit_salt` hashes only the files in
the transitive *import closure* of the unit's ``fn`` module, discovered
by a static ``ast`` walk over the package's own imports (absolute
``repro.*`` and relative forms, wherever they appear in the module).
Editing one experiment module therefore invalidates exactly the units
that can observe the change, while every other experiment stays a warm
hit.  Whenever an import edge cannot be resolved to a source file —
syntax errors, relative imports escaping the package, dynamically
computed names — the unit falls back to :func:`code_salt`, the
whole-package hash, which is always safe (never stale, merely broader).

The closure follows explicit import edges only.  A package ``__init__``
is hashed when it is the *target* of an edge (``from ..core import X``
re-exports), but merely being an ancestor package of an imported module
does not pull its ``__init__`` in: package inits here are side-effect
free aggregators, and including them would make every experiment depend
on every other through ``experiments/__init__``.

Layout on disk (default ``.repro_cache/`` under the working directory)::

    .repro_cache/
      ab/abcdef....pkl      # two-level fan-out by key prefix

Entries are self-describing (unit id + function path ride along with the
part) and written atomically via rename, so a crashed run never leaves a
truncated entry that parses.  Corrupt or unreadable entries are treated
as misses and deleted.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict, List, Optional, Set, Tuple

from .workunits import WorkUnit

#: Default cache directory name, created under the current working directory.
CACHE_DIR_NAME = ".repro_cache"

#: Sidecar recording the hit/miss/write counters of the last executor run.
LAST_RUN_FILE_NAME = "last_run.json"

# Per-process memos.  Source files are assumed immutable for the life of
# the process (the same assumption the import system makes); tests that
# rewrite files under a fixed root must call clear_salt_caches().
_SALT_CACHE: Dict[str, str] = {}
_DEPS_CACHE: Dict[Tuple[str, str], Optional[Set[str]]] = {}
_UNIT_SALT_CACHE: Dict[Tuple[str, str], str] = {}


def clear_salt_caches() -> None:
    """Drop every memoised salt/dependency entry (for tests)."""
    _SALT_CACHE.clear()
    _DEPS_CACHE.clear()
    _UNIT_SALT_CACHE.clear()


def _default_package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def code_salt(package_root: Optional[str] = None) -> str:
    """Hash of every ``*.py`` file of the repro package (path + content).

    File order is normalised (sorted relative paths) and mtimes are
    ignored, so the salt is stable across checkouts and only moves when
    source text actually changes.
    """
    if package_root is None:
        package_root = _default_package_root()
    package_root = os.path.abspath(package_root)
    cached = _SALT_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    entries = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                entries.append((os.path.relpath(path, package_root), path))
    for relpath, path in sorted(entries):
        digest.update(relpath.encode())
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    salt = digest.hexdigest()
    _SALT_CACHE[package_root] = salt
    return salt


def _module_path(package_root: str, package: str, module: str) -> Optional[str]:
    """Source file for dotted *module*, or None when it is not one."""
    parts = module.split(".")
    if parts[0] != package:
        return None
    base = os.path.join(package_root, *parts[1:])
    candidate = f"{base}.py"
    if os.path.isfile(candidate):
        return candidate
    init = os.path.join(base, "__init__.py")
    if os.path.isfile(init):
        return init
    return None


def _module_deps(
    package_root: str, package: str, module: str, path: str
) -> Optional[Set[str]]:
    """In-package modules *module* imports, or None when unresolvable.

    Walks the whole AST, so imports inside function bodies count too.
    ``from X import y`` contributes ``X`` and, when ``y`` is itself a
    submodule file, ``X.y`` — attribute imports of re-exported names
    resolve through ``X``'s own (hashed) imports instead.
    """
    key = (package_root, module)
    if key in _DEPS_CACHE:
        return _DEPS_CACHE[key]
    deps = _DEPS_CACHE[key] = _compute_module_deps(
        package_root, package, module, path
    )
    return deps


def _compute_module_deps(
    package_root: str, package: str, module: str, path: str
) -> Optional[Set[str]]:
    try:
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read())
    except (OSError, SyntaxError, UnicodeDecodeError, ValueError):
        return None
    prefix = f"{package}."
    parts = module.split(".")
    # Relative imports resolve against the module's package: the module
    # itself when it is a package (__init__), its parent otherwise.
    anchor_parts = parts if path.endswith("__init__.py") else parts[:-1]
    deps: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name != package and not name.startswith(prefix):
                    continue
                if _module_path(package_root, package, name) is None:
                    return None
                deps.add(name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                keep = len(anchor_parts) - (node.level - 1)
                if keep < 1:
                    return None  # relative import escapes the package
                anchor = anchor_parts[:keep]
                base = ".".join(anchor + node.module.split(".")) if node.module else ".".join(anchor)
            else:
                base = node.module or ""
                if base != package and not base.startswith(prefix):
                    continue
            if _module_path(package_root, package, base) is None:
                return None
            deps.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                sub = f"{base}.{alias.name}"
                if _module_path(package_root, package, sub) is not None:
                    deps.add(sub)
    return deps


def _import_closure(
    package_root: str, package: str, module: str
) -> Optional[Dict[str, str]]:
    """Transitive closure ``{module: source path}``, or None on failure."""
    path = _module_path(package_root, package, module)
    if path is None:
        return None
    paths = {module: path}
    stack = [(module, path)]
    while stack:
        mod, mod_path = stack.pop()
        deps = _module_deps(package_root, package, mod, mod_path)
        if deps is None:
            return None
        for dep in deps:
            if dep in paths:
                continue
            dep_path = _module_path(package_root, package, dep)
            if dep_path is None:
                return None
            paths[dep] = dep_path
            stack.append((dep, dep_path))
    return paths


def unit_salt(fn: str, package_root: Optional[str] = None) -> str:
    """Code salt for one work unit's ``pkg.module:callable`` path.

    Hashes the sorted (relative path, content) pairs of the transitive
    import closure of the ``fn`` module — the same format as
    :func:`code_salt` restricted to the files the unit can actually
    observe.  Falls back to the whole-package salt whenever the closure
    cannot be fully resolved statically.  Memoised per process.
    """
    if package_root is None:
        package_root = _default_package_root()
    package_root = os.path.abspath(package_root)
    module = fn.partition(":")[0]
    key = (package_root, module)
    cached = _UNIT_SALT_CACHE.get(key)
    if cached is not None:
        return cached
    package = os.path.basename(package_root)
    closure = _import_closure(package_root, package, module)
    if closure is None:
        salt = code_salt(package_root)
    else:
        digest = hashlib.sha256()
        entries = sorted(
            (os.path.relpath(path, package_root), path)
            for path in closure.values()
        )
        for relpath, path in entries:
            digest.update(relpath.encode())
            digest.update(b"\0")
            with open(path, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
        salt = digest.hexdigest()
    _UNIT_SALT_CACHE[key] = salt
    return salt


class ResultCache:
    """Persistent work-unit result store with hit/miss accounting.

    Keys are salted per unit with :func:`unit_salt` (the unit's import
    closure), so editing one experiment module leaves unrelated entries
    valid.  Passing an explicit ``salt`` pins every unit to that value
    instead (tests, ``--no-cache``).

    ``enabled=False`` turns the cache into a no-op (``--no-cache``);
    ``refresh=True`` ignores existing entries on read but still writes
    fresh ones (``--refresh``).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        enabled: bool = True,
        refresh: bool = False,
        salt: Optional[str] = None,
        package_root: Optional[str] = None,
    ) -> None:
        self.path = os.path.abspath(path or os.path.join(os.getcwd(), CACHE_DIR_NAME))
        self.enabled = enabled
        self.refresh = refresh
        self._salt = salt
        self._package_root = package_root
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def salt(self) -> str:
        """The pinned salt, or the whole-package fallback salt."""
        if self._salt is not None:
            return self._salt
        return code_salt(self._package_root)

    def salt_for(self, unit: WorkUnit) -> str:
        """Salt applied to *unit*: pinned if given, else its import closure's."""
        if self._salt is not None:
            return self._salt
        return unit_salt(unit.fn, self._package_root)

    def key(self, unit: WorkUnit) -> str:
        return unit.fingerprint(self.salt_for(unit))

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], f"{key}.pkl")

    def get(self, unit: WorkUnit) -> Tuple[bool, Any]:
        """Look up *unit*; returns ``(hit, part)`` (part is None on miss)."""
        if not self.enabled or self.refresh:
            if self.enabled:
                self.misses += 1
            return (False, None)
        entry_path = self._entry_path(self.key(unit))
        try:
            with open(entry_path, "rb") as fh:
                entry = pickle.load(fh)
            if entry.get("unit_id") != unit.unit_id:
                raise ValueError("cache key collision")
            self.hits += 1
            try:
                os.utime(entry_path)  # keep `prune` LRU-by-mtime honest
            except OSError:
                pass
            return (True, entry["part"])
        except FileNotFoundError:
            self.misses += 1
            return (False, None)
        except Exception:
            # Corrupt/incompatible entry: drop it and recompute.
            try:
                os.unlink(entry_path)
            except OSError:
                pass
            self.misses += 1
            return (False, None)

    def put(self, unit: WorkUnit, part: Any) -> None:
        """Store *unit*'s part (atomic write; no-op when disabled)."""
        if not self.enabled:
            return
        entry_path = self._entry_path(self.key(unit))
        os.makedirs(os.path.dirname(entry_path), exist_ok=True)
        blob = pickle.dumps(
            {
                "experiment_id": unit.experiment_id,
                "unit_id": unit.unit_id,
                "fn": unit.fn,
                "part": part,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(entry_path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_path, entry_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.writes += 1

    # -- maintenance (the ``python -m repro cache`` subcommand) -----------------------

    def entries(self) -> List[Tuple[str, int, float]]:
        """Every stored entry as ``(path, bytes, mtime)`` (sorted by path)."""
        found: List[Tuple[str, int, float]] = []
        if not os.path.isdir(self.path):
            return found
        for dirpath, dirnames, filenames in os.walk(self.path):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".pkl"):
                    continue
                entry_path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(entry_path)
                except OSError:
                    continue  # deleted by a concurrent run
                found.append((entry_path, stat.st_size, stat.st_mtime))
        return found

    def stats(self) -> Dict[str, int]:
        """``{"entries": N, "bytes": total}`` of the stored entries."""
        entries = self.entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry_path, _, _ in self.entries():
            try:
                os.unlink(entry_path)
                removed += 1
            except OSError:
                pass
        self._remove_empty_fanout_dirs()
        return removed

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-used entries until the cache fits.

        Entries are removed oldest-mtime-first (hits touch their entry,
        so recently *used* survives, not just recently written) until
        the total is at most *max_bytes*.  Deletes are plain unlinks —
        atomic, and safe against concurrent readers, which treat a
        vanished entry as a miss.  Returns ``(removed, remaining_bytes)``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for entry_path, size, _ in sorted(entries, key=lambda e: (e[2], e[0])):
            if total <= max_bytes:
                break
            try:
                os.unlink(entry_path)
            except OSError:
                continue
            total -= size
            removed += 1
        self._remove_empty_fanout_dirs()
        return removed, total

    def evict(self, paths) -> int:
        """Unlink specific entry files (a combined-LRU caller picked them).

        ``repro cache prune`` sweeps the result cache and the run ledger
        together; it decides the victims across both stores and hands the
        cache's share here.  Returns how many entries were removed.
        """
        removed = 0
        for entry_path in paths:
            try:
                os.unlink(entry_path)
                removed += 1
            except OSError:
                pass
        self._remove_empty_fanout_dirs()
        return removed

    def _remove_empty_fanout_dirs(self) -> None:
        if not os.path.isdir(self.path):
            return
        for name in os.listdir(self.path):
            subdir = os.path.join(self.path, name)
            if os.path.isdir(subdir):
                try:
                    os.rmdir(subdir)  # fails (harmlessly) unless empty
                except OSError:
                    pass

    # -- last-run accounting (read back by ``repro cache stats``) ---------------------

    def record_last_run(self, stats: Dict[str, Any]) -> None:
        """Persist counters of the run that just finished (best effort)."""
        if not self.enabled:
            return
        target = os.path.join(self.path, LAST_RUN_FILE_NAME)
        try:
            os.makedirs(self.path, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(stats, fh, indent=1, sort_keys=True)
            os.replace(tmp_path, target)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def last_run(self) -> Optional[Dict[str, Any]]:
        """Counters persisted by the most recent executor run, if any."""
        try:
            with open(
                os.path.join(self.path, LAST_RUN_FILE_NAME), encoding="utf-8"
            ) as fh:
                data = json.load(fh)
            return data if isinstance(data, dict) else None
        except (OSError, ValueError):
            return None


def disabled_cache() -> ResultCache:
    """A cache that neither reads nor writes (and never hashes sources)."""
    return ResultCache(enabled=False, salt="")
