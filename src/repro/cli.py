"""Command-line interface: run the paper's experiments from the shell.

    python -m repro list                 # show the experiment catalogue
    python -m repro run fig3             # regenerate Figure 3
    python -m repro run table2 fig1      # several at once
    python -m repro run all              # the whole evaluation, serially
    python -m repro run-all --jobs 4     # the whole evaluation, in parallel
    python -m repro run-all --only fig3,table1 --no-cache
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import registry


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTVirt (EuroSys'18) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the reproducible tables and figures")
    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument(
        "ids",
        nargs="+",
        metavar="ID",
        help="experiment ids from `repro list`, or 'all'",
    )
    run_all = sub.add_parser(
        "run-all",
        help="run experiments through the parallel runner with result caching",
    )
    run_all.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: in-process, same work units)",
    )
    run_all.add_argument(
        "--only",
        metavar="IDS",
        help="comma-separated experiment ids or globs like 'robustness_*' "
        "(default: the whole registry)",
    )
    run_all.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="override the RNG seed of seed-taking experiments "
        "(robustness family); cache entries are keyed per seed",
    )
    run_all.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    run_all.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results but store fresh ones",
    )
    run_all.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache location (default ./.repro_cache)",
    )
    run_all.add_argument(
        "--summaries",
        action="store_true",
        help="print each experiment's summary after the timing table",
    )
    scenario = sub.add_parser(
        "scenario", help="run a declarative JSON scenario file"
    )
    scenario.add_argument("path", help="path to the scenario JSON")
    scenario.add_argument(
        "--telemetry",
        action="store_true",
        help="attach streaming aggregators to the telemetry bus and "
        "print miss-ratio / latency-tail / bandwidth summaries",
    )
    scenario.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="stream a chrome://tracing timeline of the run to PATH "
        "(.json), without retaining a full trace in memory",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(i) for i in registry.all_ids())
    for experiment_id in registry.all_ids():
        entry = registry.REGISTRY[experiment_id]
        print(f"{experiment_id:<{width}}  {entry.paper_ref:16s} {entry.description}")
    return 0


def _cmd_run(ids: List[str]) -> int:
    if ids == ["all"]:
        ids = registry.all_ids()
    else:
        try:
            ids = registry.expand_ids(ids)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print(f"known ids: {', '.join(registry.all_ids())}", file=sys.stderr)
            return 2
    for experiment_id in ids:
        entry = registry.REGISTRY[experiment_id]
        print(f"=== {entry.paper_ref}: {entry.description}")
        started = time.time()
        result = entry.runner()
        print(result.summary())
        print(f"--- ({time.time() - started:.1f}s wall)\n")
    return 0


def _cmd_run_all(args) -> int:
    from .experiments.common import format_table
    from .runner import ResultCache, run_experiments
    from .runner.cache import disabled_cache

    ids: Optional[List[str]] = None
    if args.only:
        patterns = [i.strip() for i in args.only.split(",") if i.strip()]
        try:
            ids = registry.expand_ids(patterns)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print(f"known ids: {', '.join(registry.all_ids())}", file=sys.stderr)
            return 2
    if args.no_cache:
        cache = disabled_cache()
    else:
        cache = ResultCache(path=args.cache_dir, refresh=args.refresh)

    report = run_experiments(
        ids,
        jobs=args.jobs,
        cache=cache,
        echo=lambda m: print(f"[run-all] {m}"),
        seed=args.seed,
    )

    timing_rows = [
        {
            "experiment": r.experiment_id,
            "units": r.units,
            "cached": r.cached_units,
            "unit_wall_s": round(r.unit_wall_s, 2),
            "rows": len(r.rows),
        }
        for r in report.reports
    ]
    print(format_table(timing_rows, title="run-all — per-experiment timing"))
    cache_note = (
        "cache disabled"
        if args.no_cache
        else f"cache: {report.cache_hits} hits, {report.cache_misses} misses, "
        f"{report.cache_writes} writes"
    )
    print(
        f"total: {report.wall_s:.1f}s wall with {report.jobs} job(s); {cache_note}"
    )
    if args.summaries:
        for r in report.reports:
            print(f"\n=== {r.experiment_id}")
            print(r.summary)
    return 0


def _cmd_scenario(args) -> int:
    from .scenario import run_scenario_file

    holder = {}

    def attach(system) -> None:
        bus = system.machine.bus
        if args.telemetry:
            from .telemetry import StandardTelemetry

            holder["telemetry"] = StandardTelemetry(bus)
        if args.chrome_trace:
            from .report.export import ChromeTraceExporter

            holder["exporter"] = ChromeTraceExporter().attach(bus)

    wants_bus = args.telemetry or args.chrome_trace
    result = run_scenario_file(args.path, attach=attach if wants_bus else None)
    print(result.summary())
    telemetry = holder.get("telemetry")
    if telemetry is not None:
        misses = telemetry.misses
        print("telemetry (streamed):")
        print(
            f"  deadline miss ratio: {misses.miss_ratio() * 100:.3f}% "
            f"({misses.decided()} decided)"
        )
        if telemetry.latency.stats.count:
            tails = telemetry.latency.tail_usec()
            tail_text = "  ".join(
                f"p{p:g}={v:.1f}us" for p, v in sorted(tails.items())
            )
            print(
                f"  job latency: mean={telemetry.latency.mean_usec():.1f}us  "
                f"{tail_text}"
            )
        consumed_ns = telemetry.bandwidth.consumed_ns
        print(
            f"  cpu consumed: {sum(consumed_ns.values()) / 1e6:.1f}ms "
            f"across {len(consumed_ns)} vcpus"
        )
    exporter = holder.get("exporter")
    if exporter is not None:
        count = exporter.write(args.chrome_trace)
        print(f"chrome trace: {count} events -> {args.chrome_trace}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    return _cmd_run(args.ids)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
