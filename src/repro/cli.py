"""Command-line interface: run the paper's experiments from the shell.

    python -m repro list                 # show the experiment catalogue
    python -m repro run fig3             # regenerate Figure 3
    python -m repro run table2 fig1      # several at once
    python -m repro run all              # the whole evaluation, serially
    python -m repro run-all --jobs 4     # the whole evaluation, in parallel
    python -m repro run-all --only fig3,table1 --no-cache
    python -m repro cache stats          # entry count, bytes, last-run hits
    python -m repro cache prune --max-bytes 50000000    # LRU eviction
    python -m repro explain robustness_pcpu_fail        # why did jobs miss?
    python -m repro explain robustness_pcpu_fail --job vm2.rta1#15
    python -m repro trace record robustness_pcpu_fail -o fail.rtvt
    python -m repro trace replay fail.rtvt --scheduler Credit --diff
    python -m repro trace diff fail.rtvt whatif.rtvt    # first divergence
    python -m repro explain fail.rtvt                   # blame from a trace
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .experiments import registry


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTVirt (EuroSys'18) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the reproducible tables and figures")
    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument(
        "ids",
        nargs="+",
        metavar="ID",
        help="experiment ids from `repro list`, or 'all'",
    )
    run.add_argument(
        "--blame",
        action="store_true",
        help="after each robustness_* experiment, rerun it with causal "
        "spans attached and print the deadline-miss blame table",
    )
    run_all = sub.add_parser(
        "run-all",
        help="run experiments through the parallel runner with result caching",
    )
    run_all.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: in-process, same work units)",
    )
    run_all.add_argument(
        "--only",
        metavar="IDS",
        help="comma-separated experiment ids or globs like 'robustness_*' "
        "(default: the whole registry)",
    )
    run_all.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="override the RNG seed of seed-taking experiments "
        "(robustness family); cache entries are keyed per seed",
    )
    run_all.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    run_all.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results but store fresh ones",
    )
    run_all.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache location (default ./.repro_cache)",
    )
    run_all.add_argument(
        "--summaries",
        action="store_true",
        help="print each experiment's summary after the timing table",
    )
    run_all.add_argument(
        "--runs-dir",
        default="runs",
        metavar="PATH",
        help="run-ledger root; every run-all writes "
        "<runs-dir>/<stamp>/manifest.json (default ./runs)",
    )
    run_all.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not write a run-ledger manifest",
    )
    run_all.add_argument(
        "--trace",
        action="store_true",
        help="also record the robustness sweep's flight-recorder traces "
        "and store the merged trace next to the manifest",
    )
    cache = sub.add_parser(
        "cache", help="inspect and manage the run-all result cache"
    )
    cache.add_argument(
        "action",
        choices=("stats", "clear", "prune"),
        help="stats: entry count/bytes and last-run counters; clear: "
        "delete every entry; prune: evict LRU entries over --max-bytes",
    )
    cache.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache location (default ./.repro_cache)",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="prune target: evict least-recently-used entries until the "
        "cache plus the run ledger hold at most N bytes",
    )
    cache.add_argument(
        "--runs-dir",
        default="runs",
        metavar="PATH",
        help="run-ledger root included in stats and the prune sweep "
        "(default ./runs)",
    )
    cluster = sub.add_parser(
        "cluster",
        help="ad-hoc multi-host cluster run (placement, live migration, "
        "cross-host deadline audit)",
    )
    cluster.add_argument(
        "--mode",
        default="rebalance",
        choices=("consolidate", "rebalance", "hostfail", "clockskew"),
        help="management-plane scenario (default rebalance)",
    )
    cluster.add_argument(
        "--scheduler",
        default="RTVirt",
        choices=("RTVirt", "RT-Xen", "Credit"),
        help="host scheduler on every host (default RTVirt)",
    )
    cluster.add_argument(
        "--hosts",
        type=int,
        default=2,
        metavar="N",
        help="host count (default 2; clockskew is fixed to 2)",
    )
    cluster.add_argument(
        "--policy",
        default=None,
        choices=("worst_fit", "first_fit", "best_fit"),
        help="override the mode's default placement policy",
    )
    cluster.add_argument(
        "--duration-s",
        type=float,
        default=2.0,
        metavar="S",
        help="simulated seconds (default 2)",
    )
    cluster.add_argument(
        "--seed", type=int, default=29, metavar="N", help="RNG seed (default 29)"
    )
    cluster.add_argument(
        "--clock-offset-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-host clock offset step (host i drifts i*MS ahead; "
        "default 0.2 ms, clockskew mode sweeps its own)",
    )
    cluster.add_argument(
        "--log",
        action="store_true",
        help="print the management-plane event log (placements, "
        "migrations, faults)",
    )
    scenario = sub.add_parser(
        "scenario", help="run a declarative JSON scenario file"
    )
    scenario.add_argument("path", help="path to the scenario JSON")
    scenario.add_argument(
        "--telemetry",
        action="store_true",
        help="attach streaming aggregators to the telemetry bus and "
        "print miss-ratio / latency-tail / bandwidth summaries",
    )
    scenario.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="stream a chrome://tracing timeline of the run to PATH "
        "(.json), without retaining a full trace in memory",
    )
    scenario.add_argument(
        "--blame",
        action="store_true",
        help="build causal job spans during the run and print the "
        "deadline-miss blame table",
    )
    scenario.add_argument(
        "--profile",
        metavar="PATH",
        help="self-profile the simulator (per-event-kind handler time, "
        "per-phase engine time) and write the snapshot to PATH (.json)",
    )
    explain = sub.add_parser(
        "explain",
        help="attribute deadline misses to root causes via causal spans",
    )
    explain.add_argument(
        "target",
        help="a robustness_<fault> or feedback_*/tenant_* experiment id, "
        "or a scenario JSON path",
    )
    explain.add_argument(
        "--job",
        metavar="TASK[#N]",
        help="render the causal timeline of one job (e.g. vm2.rta1#15); "
        "a bare task name shows its missed jobs",
    )
    explain.add_argument(
        "--scheduler",
        default="RTVirt",
        help="scheduler for --job timelines (default RTVirt)",
    )
    explain.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the blame sweep (default 1)",
    )
    explain.add_argument(
        "--seed", type=int, default=11, metavar="N", help="RNG seed (default 11)"
    )
    explain.add_argument(
        "--duration-s",
        type=float,
        default=5.0,
        metavar="S",
        help="simulated seconds per cell (default 5, the robustness length)",
    )
    explain.add_argument(
        "--misses",
        type=int,
        default=5,
        metavar="N",
        help="worst misses listed per scheduler (default 5)",
    )
    trace = sub.add_parser(
        "trace",
        help="flight recorder: record, inspect, replay and diff "
        "durable telemetry traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    t_record = trace_sub.add_parser(
        "record", help="run once with the flight recorder attached"
    )
    t_record.add_argument(
        "target",
        help="a robustness_<fault> experiment id or a scenario JSON path",
    )
    t_record.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="trace file to write (default <target>.rtvt)",
    )
    t_record.add_argument(
        "--scheduler",
        default="RTVirt",
        help="scheduler for robustness targets (default RTVirt)",
    )
    t_record.add_argument(
        "--duration-s",
        type=float,
        default=5.0,
        metavar="S",
        help="simulated seconds for robustness targets (default 5)",
    )
    t_record.add_argument(
        "--seed", type=int, default=11, metavar="N", help="RNG seed (default 11)"
    )
    t_inspect = trace_sub.add_parser(
        "inspect", help="print a trace's header, counts and canonical hash"
    )
    t_inspect.add_argument("path", help="recorded .rtvt trace file")
    t_replay = trace_sub.add_parser(
        "replay",
        help="re-drive a recorded stimulus, optionally under a "
        "different scheduler (what-if)",
    )
    t_replay.add_argument("path", help="recorded .rtvt trace file")
    t_replay.add_argument(
        "--scheduler",
        default=None,
        help="what-if scheduler override (default: the recorded one)",
    )
    t_replay.add_argument(
        "--record",
        metavar="PATH",
        help="also record the replay itself to PATH",
    )
    t_replay.add_argument(
        "--diff",
        action="store_true",
        help="diff the replay's trace against the original and print "
        "the first divergence",
    )
    t_diff = trace_sub.add_parser(
        "diff", help="structural divergence diff of two recorded traces"
    )
    t_diff.add_argument("path_a", help="first trace (A)")
    t_diff.add_argument("path_b", help="second trace (B)")
    t_diff.add_argument(
        "--context",
        type=int,
        default=3,
        metavar="N",
        help="shared events shown before the divergence (default 3)",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(i) for i in registry.all_ids())
    for experiment_id in registry.all_ids():
        entry = registry.REGISTRY[experiment_id]
        print(f"{experiment_id:<{width}}  {entry.paper_ref:16s} {entry.description}")
    return 0


def _cmd_run(ids: List[str], blame: bool = False) -> int:
    if ids == ["all"]:
        ids = registry.all_ids()
    else:
        try:
            ids = registry.expand_ids(ids)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print(f"known ids: {', '.join(registry.all_ids())}", file=sys.stderr)
            return 2
    for experiment_id in ids:
        entry = registry.REGISTRY[experiment_id]
        print(f"=== {entry.paper_ref}: {entry.description}")
        started = time.time()
        result = entry.runner()
        print(result.summary())
        if blame and experiment_id.startswith("robustness_"):
            sweep = _blame_family(experiment_id[len("robustness_"):], jobs=1)
            print(sweep.summary())
        print(f"--- ({time.time() - started:.1f}s wall)\n")
    return 0


def _blame_family(
    fault: str,
    jobs: int,
    duration_ns: Optional[int] = None,
    seed: int = 11,
):
    """Run the blame sweep of one fault family through the plan executor."""
    from .runner.executor import execute_plan
    from .simcore.time import sec
    from .telemetry.blame_plan import blame_plan

    plan = blame_plan(
        faults=(fault,),
        duration_ns=duration_ns if duration_ns is not None else sec(5),
        seed=seed,
    )
    return execute_plan(plan, jobs=jobs)


def _cmd_run_all(args) -> int:
    from .experiments.common import format_table
    from .runner import ResultCache, run_experiments
    from .runner.cache import disabled_cache

    ids: Optional[List[str]] = None
    if args.only:
        patterns = [i.strip() for i in args.only.split(",") if i.strip()]
        try:
            ids = registry.expand_ids(patterns)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print(f"known ids: {', '.join(registry.all_ids())}", file=sys.stderr)
            return 2
    if args.no_cache:
        cache = disabled_cache()
    else:
        cache = ResultCache(path=args.cache_dir, refresh=args.refresh)

    report = run_experiments(
        ids,
        jobs=args.jobs,
        cache=cache,
        echo=lambda m: print(f"[run-all] {m}"),
        seed=args.seed,
    )

    timing_rows = [
        {
            "experiment": r.experiment_id,
            "units": r.units,
            "cached": r.cached_units,
            "unit_wall_s": round(r.unit_wall_s, 2),
            "rows": len(r.rows),
        }
        for r in report.reports
    ]
    print(format_table(timing_rows, title="run-all — per-experiment timing"))
    cache_note = (
        "cache disabled"
        if args.no_cache
        else f"cache: {report.cache_hits} hits, {report.cache_misses} misses, "
        f"{report.cache_writes} writes"
    )
    print(
        f"total: {report.wall_s:.1f}s wall with {report.jobs} job(s); {cache_note}"
    )
    if not args.no_ledger:
        _write_run_ledger(args, report)
    if args.summaries:
        for r in report.reports:
            print(f"\n=== {r.experiment_id}")
            print(r.summary)
    return 0


def _write_run_ledger(args, report) -> None:
    """Persist this run-all as a ledger entry under ``<runs-dir>/<stamp>``."""
    from .runner import ledger
    from .simcore.events import active_queue_class

    stamp, run_dir = ledger.new_run_dir(args.runs_dir)
    manifest = {
        "stamp": stamp,
        "git_sha": ledger.git_sha(),
        "seed": args.seed,
        "jobs": report.jobs,
        "wall_s": round(report.wall_s, 2),
        "event_queue": active_queue_class().__name__,
        "cache": {
            "enabled": not args.no_cache,
            "hits": report.cache_hits,
            "misses": report.cache_misses,
            "writes": report.cache_writes,
        },
        "experiments": {
            r.experiment_id: {
                "rows": len(r.rows),
                "rows_sha256": ledger.rows_hash(r.rows),
                "units": r.units,
                "cached_units": r.cached_units,
                "unit_wall_s": round(r.unit_wall_s, 3),
                "unit_walls": {u: round(w, 3) for u, w in r.unit_walls.items()},
            }
            for r in report.reports
        },
    }
    if args.trace:
        from .runner.executor import execute_plan
        from .telemetry.trace_plan import trace_plan

        bundle = execute_plan(trace_plan(), jobs=report.jobs)
        trace_path = bundle.write(os.path.join(run_dir, "robustness.rtvt"))
        manifest["trace"] = {
            "path": os.path.basename(trace_path),
            "sha256": bundle.merged_hash,
            "events": sum(p["events"] for p in bundle.parts),
            "parts": [
                {
                    "fault": p["fault"],
                    "scheduler": p["scheduler"],
                    "sha256": p["hash"],
                }
                for p in bundle.parts
            ],
        }
        print(
            f"[run-all] recorded {manifest['trace']['events']} trace events "
            f"-> {trace_path} (hash {bundle.merged_hash[:16]})"
        )
    path = ledger.write_manifest(run_dir, manifest)
    print(f"[run-all] ledger: {path}")


def _format_bytes(count: int) -> str:
    size = float(count)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or suffix == "GiB":
            return f"{size:.1f} {suffix}" if suffix != "B" else f"{count} B"
        size /= 1024
    return f"{count} B"  # pragma: no cover - unreachable


def _cmd_cache(args) -> int:
    from .runner import ledger
    from .runner.cache import ResultCache

    # Maintenance never hashes sources: pin an unused salt.
    cache = ResultCache(path=args.cache_dir, salt="")
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache: {cache.path}")
        print(f"  entries: {stats['entries']}")
        print(f"  size: {_format_bytes(stats['bytes'])}")
        last = cache.last_run()
        if last is not None:
            print(
                f"  last run: {last.get('hits', 0)} hits, "
                f"{last.get('misses', 0)} misses, "
                f"{last.get('writes', 0)} writes "
                f"({last.get('units', '?')} units, "
                f"{last.get('jobs', '?')} job(s), "
                f"{last.get('wall_s', '?')}s wall)"
            )
        else:
            print("  last run: no recorded run")
        runs = ledger.runs_stats(args.runs_dir)
        print(f"runs ledger: {runs['root']}")
        print(f"  runs: {runs['runs']}")
        print(f"  size: {_format_bytes(runs['total_bytes'])}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.path}")
        return 0
    # prune: one LRU-by-mtime sweep over cache entries AND ledger runs
    # (a run directory is one unit — it is evicted whole).
    if args.max_bytes is None:
        print("cache prune requires --max-bytes N", file=sys.stderr)
        return 2
    if args.max_bytes < 0:
        print(f"max_bytes must be >= 0, got {args.max_bytes}", file=sys.stderr)
        return 2
    victims = sorted(
        [("cache", p, s, m) for p, s, m in cache.entries()]
        + [("run", p, s, m) for p, s, m in ledger.run_entries(args.runs_dir)],
        key=lambda e: (e[3], e[1]),
    )
    total = sum(size for _kind, _path, size, _mtime in victims)
    cache_victims: List[str] = []
    removed_runs = 0
    for kind, path, size, _mtime in victims:
        if total <= args.max_bytes:
            break
        if kind == "cache":
            cache_victims.append(path)
        else:
            ledger.remove_run(path)
            removed_runs += 1
        total -= size
    removed = cache.evict(cache_victims)
    print(
        f"pruned {removed} cache entries and {removed_runs} ledger runs; "
        f"{_format_bytes(total)} remain"
    )
    return 0


def _cmd_cluster(args) -> int:
    from .experiments.cluster_scale import assemble_cluster, run_cluster_host
    from .simcore.time import MSEC, sec

    host_count = 2 if args.mode == "clockskew" else args.hosts
    if host_count < 2:
        print("a cluster needs at least 2 hosts", file=sys.stderr)
        return 2
    duration_ns = sec(args.duration_s)
    offset_ns = (
        None if args.clock_offset_ms is None else int(args.clock_offset_ms * MSEC)
    )
    holder = {}

    def attach(cluster, host) -> None:
        holder.setdefault("cluster", cluster)

    parts = [
        run_cluster_host(
            args.mode,
            args.scheduler,
            host_count,
            host_index,
            duration_ns,
            args.seed,
            clock_offset_step_ns=offset_ns,
            policy=args.policy,
            attach=attach,
        )
        for host_index in range(host_count)
    ]
    print(assemble_cluster(parts).summary())
    if args.log:
        print("\nmanagement-plane log (host 0's run):")
        for time_ns, kind, detail in holder["cluster"].log:
            joined = ", ".join(str(d) for d in detail)
            print(f"  {time_ns / 1e6:10.3f}ms  {kind:<16s} {joined}")
    return 0


def _cmd_scenario(args) -> int:
    from .scenario import run_scenario_file

    holder = {}

    def attach(system) -> None:
        bus = system.machine.bus
        if args.telemetry:
            from .telemetry import StandardTelemetry

            holder["telemetry"] = StandardTelemetry(bus)
        if args.chrome_trace:
            from .report.export import ChromeTraceExporter

            holder["exporter"] = ChromeTraceExporter().attach(bus)
        if args.blame:
            from .telemetry.spans import SpanBuilder

            holder["spans"] = SpanBuilder().attach(system.machine)
        if args.profile:
            from .telemetry.profile import SimProfiler

            holder["profiler"] = SimProfiler().install(
                engine=system.engine, bus=bus
            )

    wants_bus = args.telemetry or args.chrome_trace or args.blame or args.profile
    result = run_scenario_file(args.path, attach=attach if wants_bus else None)
    print(result.summary())
    telemetry = holder.get("telemetry")
    if telemetry is not None:
        misses = telemetry.misses
        print("telemetry (streamed):")
        print(
            f"  deadline miss ratio: {misses.miss_ratio() * 100:.3f}% "
            f"({misses.decided()} decided)"
        )
        if telemetry.latency.stats.count:
            tails = telemetry.latency.tail_usec()
            tail_text = "  ".join(
                f"p{p:g}={v:.1f}us" for p, v in sorted(tails.items())
            )
            print(
                f"  job latency: mean={telemetry.latency.mean_usec():.1f}us  "
                f"{tail_text}"
            )
        consumed_ns = telemetry.bandwidth.consumed_ns
        print(
            f"  cpu consumed: {sum(consumed_ns.values()) / 1e6:.1f}ms "
            f"across {len(consumed_ns)} vcpus"
        )
    exporter = holder.get("exporter")
    if exporter is not None:
        count = exporter.write(args.chrome_trace)
        print(f"chrome trace: {count} events -> {args.chrome_trace}")
    spans = holder.get("spans")
    if spans is not None:
        from .report.ascii import render_blame_table
        from .telemetry.blame import analyze_spans

        spans.finalize(result.duration_ns)
        report, _misses = analyze_spans(spans)
        print(render_blame_table(report.snapshot()))
    profiler = holder.get("profiler")
    if profiler is not None:
        profiler.uninstall()
        from .report.export import export_profile

        export_profile(profiler, args.profile)
        print(profiler.summary())
        print(f"profile: -> {args.profile}")
    return 0


def _parse_job(spec: str):
    """``vm2.rta1#15`` -> (task, 15); ``vm2.rta1`` -> (task, None)."""
    task, _, index = spec.partition("#")
    return task, int(index) if index else None


def _print_timelines(builder, job_spec: str, limit: int) -> int:
    from .report.ascii import render_span_timeline
    from .telemetry.blame import attribute_miss

    task, index = _parse_job(job_spec)
    spans = builder.spans_for(task)
    if index is not None:
        spans = [s for s in spans if s.job == index]
    elif any(s.missed for s in spans):
        spans = [s for s in spans if s.missed][:limit]
    else:
        spans = spans[:limit]
    if not spans:
        print(f"no spans for {job_spec!r}", file=sys.stderr)
        return 2
    for span in spans:
        lost = attribute_miss(span, builder) if span.missed else None
        print(render_span_timeline(span, lost))
        print()
    return 0


def _explain_scenario(args) -> int:
    from .report.ascii import render_blame_table
    from .scenario import run_scenario_file
    from .telemetry.blame import analyze_spans
    from .telemetry.spans import SpanBuilder

    holder = {}

    def attach(system) -> None:
        holder["spans"] = SpanBuilder().attach(system.machine)

    result = run_scenario_file(args.target, attach=attach)
    builder = holder["spans"].finalize(result.duration_ns)
    report, misses = analyze_spans(builder)
    print(result.summary())
    print(render_blame_table(report.snapshot()))
    if args.job:
        print()
        return _print_timelines(builder, args.job, args.misses)
    worst = sorted(misses, key=lambda m: -m["lateness_ns"])[: args.misses]
    if worst:
        print("worst misses:")
        for m in worst:
            print(
                f"  {m['task']}#{m['job']} +{m['lateness_ns'] / 1e6:.3f}ms "
                f"primary={m['primary']}"
            )
    return 0


def _explain_feedback(args) -> int:
    from .experiments.feedback_adaptive import explain_feedback
    from .experiments.common import format_table
    from .report.ascii import render_blame_table
    from .simcore.time import sec

    cells = explain_feedback(args.target, sec(args.duration_s), args.seed)
    for cell in cells:
        print(
            f"=== {args.target} — policy {cell['policy']!r} "
            f"({args.duration_s:g}s, seed {args.seed})"
        )
        print(format_table(cell["rows"], title="result rows"))
        print(render_blame_table(cell["blame"]))
        print(format_table(cell["tenants"], title="per-tenant blame/credit"))
        print()
    return 0


def _is_trace(path: str) -> bool:
    """True when *path* is a flight-recorder trace (RTVT magic)."""
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == b"RTVT"
    except OSError:
        return False


def _explain_trace(args) -> int:
    """Offline blame: rebuild causal spans from a recorded trace."""
    from .report.ascii import render_blame_table
    from .telemetry.blame import analyze_spans
    from .telemetry.record import TraceReader
    from .telemetry.replay import spans_from_trace

    reader = TraceReader(args.target)
    header = reader.header
    label = header.get("fault") or header.get("name") or args.target
    print(
        f"trace {args.target}: {header.get('format', '?')} {label} under "
        f"{header.get('scheduler', '?')}, {reader.event_count} events, "
        f"hash {reader.trace_hash[:16]}\n"
    )
    builder = spans_from_trace(reader)
    report, misses = analyze_spans(builder)
    print(render_blame_table(report.snapshot()))
    if args.job:
        print()
        return _print_timelines(builder, args.job, args.misses)
    worst = sorted(misses, key=lambda m: -m["lateness_ns"])[: args.misses]
    if worst:
        print("worst misses:")
        for m in worst:
            print(
                f"  {m['task']}#{m['job']} +{m['lateness_ns'] / 1e6:.3f}ms "
                f"primary={m['primary']}"
            )
    return 0


def _cmd_explain(args) -> int:
    if _is_trace(args.target):
        return _explain_trace(args)
    if args.target.endswith(".json"):
        return _explain_scenario(args)
    from .experiments.feedback_adaptive import FEEDBACK_CELLS

    if args.target in FEEDBACK_CELLS:
        return _explain_feedback(args)
    from .experiments.robustness import ROBUSTNESS_FAULTS
    from .simcore.time import sec

    fault = args.target
    if fault.startswith("robustness_"):
        fault = fault[len("robustness_"):]
    if fault not in ROBUSTNESS_FAULTS:
        known = ", ".join(
            [f"robustness_{f}" for f in ROBUSTNESS_FAULTS]
            + list(FEEDBACK_CELLS)
        )
        print(
            f"unknown target {args.target!r}; pick a scenario .json or one "
            f"of: {known}",
            file=sys.stderr,
        )
        return 2
    duration_ns = sec(args.duration_s)
    if args.job:
        from .experiments.robustness import run_robustness_case
        from .telemetry.spans import SpanBuilder

        holder = {}

        def attach(system) -> None:
            holder["spans"] = SpanBuilder().attach(system.machine)

        run_robustness_case(
            fault,
            args.scheduler,
            duration_ns,
            args.seed,
            check_invariants=False,
            attach=attach,
        )
        builder = holder["spans"].finalize()
        print(
            f"robustness_{fault} under {args.scheduler} "
            f"({args.duration_s:g}s, seed {args.seed}):\n"
        )
        return _print_timelines(builder, args.job, args.misses)
    sweep = _blame_family(
        fault, jobs=args.jobs, duration_ns=duration_ns, seed=args.seed
    )
    print(sweep.summary())
    for part in sweep.parts:
        worst = sorted(part["misses"], key=lambda m: -m["lateness_ns"])
        worst = worst[: args.misses]
        if not worst:
            continue
        print(f"\nworst misses — {part['scheduler']}:")
        for m in worst:
            state = " (unfinished)" if m["incomplete"] else ""
            print(
                f"  {m['task']}#{m['job']} +{m['lateness_ns'] / 1e6:.3f}ms "
                f"primary={m['primary']}{state}"
            )
    return 0


def _trace_record(args) -> int:
    from .experiments.common import format_table

    if args.target.endswith(".json"):
        from .telemetry.replay import record_scenario_file

        output = args.output or args.target[: -len(".json")] + ".rtvt"
        recorded = record_scenario_file(args.target, output)
    else:
        from .experiments.robustness import ROBUSTNESS_FAULTS
        from .simcore.time import sec
        from .telemetry.replay import canonical_scheduler, record_robustness_case

        fault = args.target
        if fault.startswith("robustness_"):
            fault = fault[len("robustness_"):]
        if fault not in ROBUSTNESS_FAULTS:
            known = ", ".join(f"robustness_{f}" for f in ROBUSTNESS_FAULTS)
            print(
                f"unknown target {args.target!r}; pick a scenario .json or "
                f"one of: {known}",
                file=sys.stderr,
            )
            return 2
        try:
            scheduler = canonical_scheduler(args.scheduler)
        except ValueError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        output = args.output or f"robustness_{fault}.rtvt"
        recorded = record_robustness_case(
            fault, scheduler, sec(args.duration_s), args.seed, path=output
        )
    reader = recorded.reader()
    print(format_table(recorded.rows, title="recorded run"))
    print(
        f"trace: {reader.event_count} events, "
        f"hash {reader.trace_hash[:16]} -> {output}"
    )
    return 0


def _trace_inspect(args) -> int:
    from .experiments.common import format_table
    from .telemetry.record import TraceReader

    reader = TraceReader(args.path)
    print(f"trace: {args.path}")
    for key in sorted(reader.header):
        if key == "spec":
            continue  # a full scenario spec is too bulky for a one-liner
        print(f"  {key}: {reader.header[key]}")
    print(f"  events: {reader.event_count}")
    if reader.strings is not None:
        print(f"  strings: {len(reader.strings)} interned")
    print(f"  hash: {reader.trace_hash}")
    for section in reader.sections:
        print(
            f"  section {section['label']}: {section['events']} events, "
            f"hash {section['hash'][:16]}"
        )
    for key in sorted(reader.meta):
        print(f"  meta.{key}: {reader.meta[key]}")
    rows = [
        {"kind": kind, "count": reader.counts[kind]}
        for kind in sorted(reader.counts)
    ]
    print(format_table(rows, title="event counts"))
    return 0


def _trace_replay(args) -> int:
    from .experiments.common import format_table
    from .telemetry.replay import replay_trace

    try:
        result = replay_trace(
            args.path,
            scheduler=args.scheduler,
            record_path=args.record,
            record=args.diff,
        )
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(format_table(result.rows, title=f"replay under {result.scheduler}"))
    if result.scheduler == result.header.get("scheduler"):
        verdict = "MATCH" if result.rows_match() else "DIVERGED"
        print(f"round trip vs recorded rows: {verdict}")
    else:
        print(
            f"what-if: recorded under {result.header.get('scheduler')}, "
            f"replayed under {result.scheduler}"
        )
    if args.record:
        print(f"replay trace -> {args.record}")
    if args.diff:
        from .telemetry.diff import diff_traces
        from .telemetry.record import TraceReader

        print()
        print(diff_traces(TraceReader(args.path), result.reader()).summary())
    return 0


def _trace_diff(args) -> int:
    from .telemetry.diff import diff_traces

    diff = diff_traces(args.path_a, args.path_b, context=args.context)
    print(diff.summary())
    return 0 if diff.identical else 1


def _cmd_trace(args) -> int:
    if args.trace_command == "record":
        return _trace_record(args)
    if args.trace_command == "inspect":
        return _trace_inspect(args)
    if args.trace_command == "replay":
        return _trace_replay(args)
    return _trace_diff(args)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_run(args.ids, blame=args.blame)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
