"""The cluster facade: N hosts, one engine, live VM mobility.

A :class:`Cluster` instantiates one complete per-host system
(:class:`~repro.core.system.RTVirtSystem`,
:class:`~repro.baselines.rtxen.RTXenSystem` or
:class:`~repro.baselines.credit.CreditSystem`) per
:class:`~repro.cluster.hosts.HostSpec`, all sharing a single
:class:`~repro.simcore.engine.Engine`, so cross-host events (pre-copy
rounds, blackouts, client deliveries) interleave with every host's
scheduling in one deterministic timeline.

Placement is delegated to the analytical
:class:`~repro.placement.cluster.ClusterPlanner` — the planner's
bookkeeping *is* the management plane's view, kept in lock-step with
the simulated reality by :meth:`seed` / :meth:`add_vm` /
:meth:`shutdown_vm` / :meth:`migrate`.  Bandwidth demand is computed
per host-scheduler family from the VM's RTA set, using exactly the
reservation the in-sim admission path would derive, so planner-feasible
placements are admission-feasible by construction.

Clock semantics: the engine time is the one true timeline; each host
additionally has a :class:`~repro.simcore.clock.HostClock` mapping it
to a local view.  All scheduling runs on engine time — only the
cross-host deadline audit (stamp on the releasing host, check on the
completing host) reads local clocks, which is where offset and drift
become observable.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..baselines.credit import CreditSystem
from ..baselines.rtxen import RTXenSystem
from ..control import actions as A
from ..control.port import ActuationPort
from ..core.system import DEFAULT_SLACK_NS, RTVirtSystem
from ..guest.task import Task, TaskKind
from ..placement.cluster import ClusterPlanner, HostDescriptor, VMDemand
from ..placement.migration import (
    MigrationParams,
    migration_safe_for,
    plan_rebalancing,
    precopy_schedule,
)
from ..simcore.engine import Engine
from ..simcore.errors import AdmissionError, ConfigurationError
from ..workloads.arrivals import ArrivalMux
from .clients import ClusterClient, CrossHostAudit
from .hosts import ClusterHost, HostSpec
from .live import LiveMigration

SCHEDULERS = ("RTVirt", "RT-Xen", "Credit")


class Cluster:
    """N RTVirt/RT-Xen/Credit hosts in one engine, with live migration."""

    def __init__(
        self,
        specs: Sequence[HostSpec],
        scheduler: str = "RTVirt",
        policy: str = "worst_fit",
        engine: Optional[Engine] = None,
        migration: Optional[MigrationParams] = None,
        rtxen_host: str = "gedf",
        slack_ns: int = DEFAULT_SLACK_NS,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown cluster scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        if not specs:
            raise ConfigurationError("a cluster needs at least one host")
        self.engine = engine if engine is not None else Engine()
        self.scheduler_name = scheduler
        self.rtxen_host = rtxen_host
        self.slack_ns = slack_ns
        self.hosts: List[ClusterHost] = [
            ClusterHost(i, spec, self._build_system(spec))
            for i, spec in enumerate(specs)
        ]
        self.planner = ClusterPlanner(
            [
                HostDescriptor(s.name, s.pcpu_count, s.background_reserve)
                for s in specs
            ],
            policy,
        )
        #: Default pre-copy parameters for :meth:`migrate`/:meth:`rebalance`;
        #: ``None`` means "migration not configured (or non-convergent)".
        self.migration_params = migration
        self.mux = ArrivalMux(self.engine, "cluster-net")
        self.audit = CrossHostAudit()
        self.vms: Dict[str, object] = {}
        self.rt_tasks: Dict[str, List[Task]] = {}
        self.clients: List[ClusterClient] = []
        self.migrations: List[LiveMigration] = []
        self.total_downtime_ns = 0
        self._vm_hosts: Dict[str, ClusterHost] = {}
        self._vm_rtas: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        self._migrating: Set[str] = set()
        #: Management-plane event log: (engine time, kind, detail tuple).
        self.log: List[Tuple[int, str, tuple]] = []
        #: The cluster's own actuation port: placement mutations
        #: (migrate, rebalance) flow through it, so feedback policies
        #: can observe/issue them the same way they do bandwidth ones.
        self.control = ActuationPort()
        self.control.register(
            A.MigrateVM.kind,
            lambda a: self._do_migrate(a.vm_name, a.dest, a.params),
        )
        self.control.register(
            A.RebalanceCluster.kind,
            lambda a: self._do_rebalance(a.params, a.target_imbalance),
        )

    def _build_system(self, spec: HostSpec):
        if self.scheduler_name == "RTVirt":
            return RTVirtSystem(
                spec.pcpu_count,
                engine=self.engine,
                slack_ns=self.slack_ns,
                background_reserve=spec.background_reserve,
            )
        if self.scheduler_name == "RT-Xen":
            return RTXenSystem(spec.pcpu_count, engine=self.engine, host=self.rtxen_host)
        return CreditSystem(spec.pcpu_count, engine=self.engine)

    # -- lookups -------------------------------------------------------------------

    @property
    def machine(self):
        """The first host's machine (fault-DSL context compatibility)."""
        return self.hosts[0].machine

    def host(self, ref) -> ClusterHost:
        """Resolve a host by index, name or identity."""
        if isinstance(ref, ClusterHost):
            return ref
        if isinstance(ref, int):
            return self.hosts[ref]
        for chost in self.hosts:
            if chost.name == ref:
                return chost
        raise ConfigurationError(f"unknown host {ref!r}")

    def host_of(self, vm_name: str) -> ClusterHost:
        """The host currently *running* the VM (flips at migration resume)."""
        return self._vm_hosts[vm_name]

    def _note(self, kind: str, *detail) -> None:
        self.log.append((self.engine.now, kind, detail))

    # -- demand / reservation accounting -------------------------------------------

    def _reservation_for(
        self, rtas: Sequence[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        """The single-VCPU (budget, period) a VM with *rtas* reserves.

        Mirrors the in-sim sizing exactly: RTVirt derives the budget from
        the task set's aggregate bandwidth at the minimum period plus the
        per-VCPU slack (:func:`repro.guest.params.derive_vcpu_params`);
        RT-Xen sizes an offline deferrable-server interface with a 1.5×
        bandwidth margin; Credit reserves nothing (weight-scheduled).
        """
        if self.scheduler_name == "Credit":
            return None
        period_ns = min(p for _, p in rtas)
        if self.scheduler_name == "RT-Xen":
            budget_ns = min(
                period_ns,
                sum(s * period_ns // p for s, p in rtas) * 3 // 2,
            )
            return (budget_ns, period_ns)
        bandwidth = sum(Fraction(s, p) for s, p in rtas)
        budget_ns = math.ceil(bandwidth * period_ns) + self.slack_ns
        return (min(budget_ns, period_ns), period_ns)

    def _demand(self, name: str, rtas: Sequence[Tuple[int, int]]) -> VMDemand:
        """Planner-visible bandwidth: the reservation, not the raw load."""
        reservation = self._reservation_for(rtas)
        if reservation is None:  # Credit: plan on raw task bandwidth
            return VMDemand(name, sum(Fraction(s, p) for s, p in rtas))
        budget_ns, period_ns = reservation
        return VMDemand(name, Fraction(budget_ns, period_ns))

    def _planner_demand(self, vm_name: str) -> VMDemand:
        host = self.planner.host_of(vm_name)
        return next(vm for vm in host.placed if vm.name == vm_name)

    # -- VM lifecycle ---------------------------------------------------------------

    def seed(
        self, workload: Sequence[Tuple[str, Sequence[Tuple[int, int]]]]
    ) -> Dict[str, str]:
        """Batch-place the initial VM population via the planner.

        Uses :meth:`ClusterPlanner.place_all` (largest demand first,
        all-or-nothing) and instantiates each VM on its assigned host.
        Returns {vm name -> host name}.
        """
        demands = [self._demand(name, rtas) for name, rtas in workload]
        assignments = self.planner.place_all(demands)
        for name, rtas in workload:
            self._instantiate(self.host(assignments[name]), name, rtas)
        return assignments

    def add_vm(self, name: str, rtas: Sequence[Tuple[int, int]]):
        """Place one VM on the best *alive* host under the planner policy."""
        demand = self._demand(name, rtas)
        descriptor = self._choose_alive(demand)
        descriptor.placed.append(demand)
        self.planner.assignments[name] = descriptor.name
        return self._instantiate(self.host(descriptor.name), name, rtas)

    def _choose_alive(self, demand: VMDemand) -> HostDescriptor:
        """Planner-policy candidate selection restricted to alive hosts.

        Same tie-breaking as :meth:`ClusterPlanner._candidate` (lowest
        index wins), minus any failed host — the planner itself has no
        notion of host health.
        """
        feasible = [
            (i, self.planner.host(chost.name))
            for i, chost in enumerate(self.hosts)
            if not chost.failed
        ]
        feasible = [(i, d) for i, d in feasible if d.fits(demand)]
        if not feasible:
            raise AdmissionError(
                f"no live host can admit {demand.name} "
                f"(demand {float(demand.bandwidth):.3f} CPUs)",
                level="host",
            )
        if self.planner.policy == "worst_fit":
            return max(feasible, key=lambda pair: (pair[1].headroom, -pair[0]))[1]
        if self.planner.policy == "best_fit":
            return min(feasible, key=lambda pair: (pair[1].headroom, pair[0]))[1]
        return feasible[0][1]  # first_fit

    def _instantiate(self, chost: ClusterHost, name: str, rtas):
        system = chost.system
        rtas = tuple(tuple(pair) for pair in rtas)
        if self.scheduler_name == "RT-Xen":
            vm = system.create_vm(name, interfaces=[self._reservation_for(rtas)])
        else:
            vm = system.create_vm(name)
        tasks: List[Task] = []
        for j, (slice_ns, period_ns) in enumerate(rtas):
            task = Task(f"{name}.rta{j}", slice_ns, period_ns, TaskKind.SPORADIC)
            if self.scheduler_name == "RT-Xen":
                system.register_rta(vm, task)
            else:
                vm.register_task(task)
            tasks.append(task)
        self.vms[name] = vm
        self.rt_tasks[name] = tasks
        self._vm_hosts[name] = chost
        self._vm_rtas[name] = rtas
        self._note("vm_place", name, chost.name)
        return vm

    def shutdown_vm(self, name: str) -> None:
        if name in self._migrating:
            raise ConfigurationError(f"VM {name} is mid-migration")
        vm = self.vms.pop(name)
        chost = self._vm_hosts.pop(name)
        self.planner.remove(name)
        self._vm_rtas.pop(name)
        self.rt_tasks.pop(name)
        chost.system.shutdown_vm(vm)
        self._note("vm_shutdown", name, chost.name)

    def attach_client(
        self,
        vm_name: str,
        task_index: int,
        rng,
        min_interarrival_ns: int,
        max_interarrival_ns: int,
        deadline_ns: Optional[int] = None,
    ) -> ClusterClient:
        """Start an open-loop network client against one of a VM's RTAs."""
        task = self.rt_tasks[vm_name][task_index]
        client = ClusterClient(
            self,
            vm_name,
            task,
            rng,
            min_interarrival_ns,
            max_interarrival_ns,
            deadline_ns,
        )
        self.clients.append(client)
        return client.start()

    # -- migration -------------------------------------------------------------------

    def migrate(
        self,
        vm_name: str,
        dest,
        params: Optional[MigrationParams] = None,
    ) -> Optional[LiveMigration]:
        """Start a live migration of *vm_name* to *dest* (None = refused).

        Routed through the cluster's actuation port; refusal is graceful
        and logged: no configured (or non-convergent) pre-copy
        parameters, the VM already in flight, or destination == source /
        failed.  An analytically *unsafe* migration (downtime exceeding
        some RTA's slack) still runs — its misses are data.
        """
        return self.control.submit(
            A.MigrateVM(cluster=self, vm_name=vm_name, dest=dest, params=params)
        )

    def _do_migrate(
        self,
        vm_name: str,
        dest,
        params: Optional[MigrationParams] = None,
    ) -> Optional[LiveMigration]:
        params = self.migration_params if params is None else params
        if params is None:
            self._note("migrate_unsafe", vm_name, "non-convergent pre-copy")
            return None
        if vm_name in self._migrating:
            self._note("migrate_skipped", vm_name, "already migrating")
            return None
        source = self._vm_hosts[vm_name]
        dest = self.host(dest)
        if dest is source or dest.failed:
            self._note("migrate_skipped", vm_name, dest.name)
            return None
        # Move the planner bookkeeping up front: the management plane
        # commits the destination's bandwidth at decision time, even
        # though the VCPUs only arrive at resume.
        demand = self._planner_demand(vm_name)
        self.planner.remove(vm_name)
        target = self.planner.host(dest.name)
        if not target.fits(demand):
            self._note("migrate_overcommit", vm_name, dest.name)
        target.placed.append(demand)
        self.planner.assignments[vm_name] = target.name
        return self._start_migration(vm_name, source, dest, params)

    def _start_migration(
        self,
        vm_name: str,
        source: ClusterHost,
        dest: ClusterHost,
        params: MigrationParams,
    ) -> LiveMigration:
        schedule = precopy_schedule(params)
        estimate = schedule.estimate()
        safe = all(
            migration_safe_for(estimate, slice_ns, period_ns)
            for slice_ns, period_ns in self._vm_rtas[vm_name]
        )
        migration = LiveMigration(
            self,
            vm_name,
            source,
            dest,
            schedule,
            safe,
            self._reservation_for(self._vm_rtas[vm_name]),
        )
        self._migrating.add(vm_name)
        self.migrations.append(migration)
        return migration.start()

    def _finish_migration(self, migration: LiveMigration, vm) -> None:
        self._vm_hosts[migration.vm_name] = migration.dest
        self._migrating.discard(migration.vm_name)
        self.total_downtime_ns += migration.downtime_ns
        self._note("migrate_resume", migration.vm_name, migration.dest.name)

    def rebalance(
        self,
        params: Optional[MigrationParams] = None,
        target_imbalance: float = 0.2,
    ) -> List[str]:
        """Plan and execute live migrations reducing planner imbalance.

        Routed through the cluster's actuation port.  Delegates the
        proposal (and its planner bookkeeping) to
        :func:`repro.placement.migration.plan_rebalancing`; each proposed
        VM then gets an in-sim :class:`LiveMigration`.  Proposals for VMs
        already in flight are skipped (the planner's view keeps the
        move — it will be reconciled by the in-flight migration's own
        destination).  Returns the VM names actually set in motion.
        """
        return self.control.submit(
            A.RebalanceCluster(
                cluster=self, params=params, target_imbalance=target_imbalance
            )
        )

    def _do_rebalance(
        self,
        params: Optional[MigrationParams] = None,
        target_imbalance: float = 0.2,
    ) -> List[str]:
        params = self.migration_params if params is None else params
        if params is None:
            self._note("rebalance_off", "non-convergent pre-copy")
            return []
        proposals = plan_rebalancing(self.planner, params, target_imbalance)
        executed: List[str] = []
        for vm_name in proposals:
            source = self._vm_hosts.get(vm_name)
            dest_name = self.planner.assignments[vm_name]
            if (
                source is None
                or source.name == dest_name
                or vm_name in self._migrating
            ):
                continue
            dest = self.host(dest_name)
            if dest.failed:
                continue
            self._start_migration(vm_name, source, dest, params)
            executed.append(vm_name)
        self._note("rebalance", len(proposals), len(executed))
        return executed

    # -- host faults ------------------------------------------------------------------

    def fail_host(self, ref) -> None:
        """Fail every PCPU of a host and evacuate its VMs by migration."""
        chost = self.host(ref)
        if chost.failed:
            return
        chost.failed = True
        for index in range(chost.spec.pcpu_count):
            chost.system.fail_pcpu(index)
        self._note("host_fail", chost.name)
        self._evacuate(chost)

    def recover_host(self, ref) -> None:
        """Bring a failed host's PCPUs back (VMs do not migrate back)."""
        chost = self.host(ref)
        if not chost.failed:
            return
        for index in range(chost.spec.pcpu_count):
            chost.system.recover_pcpu(index)
        chost.failed = False
        self._note("host_recover", chost.name)

    def _evacuate(self, chost: ClusterHost) -> None:
        """Migrate every VM off *chost*, worst-fit over the alive hosts."""
        stranded = [
            name
            for name, home in sorted(self._vm_hosts.items())
            if home is chost and name not in self._migrating
        ]
        for vm_name in stranded:
            target = self._evacuation_target(vm_name, chost)
            if target is None:
                self._note("vm_stranded", vm_name, chost.name)
                continue
            self.migrate(vm_name, target)

    def _evacuation_target(
        self, vm_name: str, source: ClusterHost
    ) -> Optional[ClusterHost]:
        demand = self._planner_demand(vm_name)
        best: Optional[ClusterHost] = None
        best_headroom: Optional[Fraction] = None
        for chost in self.hosts:
            if chost.failed or chost is source:
                continue
            descriptor = self.planner.host(chost.name)
            if not descriptor.fits(demand):
                continue
            if best_headroom is None or descriptor.headroom > best_headroom:
                best = chost
                best_headroom = descriptor.headroom
        return best

    # -- run --------------------------------------------------------------------------

    def run(self, duration_ns: int) -> None:
        """Advance the whole cluster by *duration_ns* on the shared engine."""
        for chost in self.hosts:
            chost.machine.start()
        self.engine.run_until(self.engine.now + duration_ns)
        for chost in self.hosts:
            chost.machine.sync_all()

    def finalize(self) -> None:
        """Close out accounting on every host, plus mid-blackout VMs."""
        for chost in self.hosts:
            chost.system.finalize()
        for name, vm in sorted(self.vms.items()):
            if vm.machine is None:  # paused in a blackout at the horizon
                vm.finalize(self.engine.now)
