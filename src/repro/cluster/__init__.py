"""Multi-host cluster simulation: N systems, one engine, live migration.

The cluster layer composes existing single-host systems into one
deterministic timeline: planner-seeded placement
(:mod:`repro.placement.cluster`), in-sim pre-copy live migration
(:mod:`repro.placement.migration` executed by :class:`LiveMigration`),
per-host clocks (:mod:`repro.simcore.clock`) and network-attached
clients (:class:`ClusterClient` over
:class:`~repro.workloads.netdelay.NetLink`).
"""

from .clients import ClusterClient, CrossHostAudit
from .cluster import SCHEDULERS, Cluster
from .hosts import ClusterHost, HostSpec, default_specs
from .live import LiveMigration

__all__ = [
    "SCHEDULERS",
    "Cluster",
    "ClusterClient",
    "ClusterHost",
    "CrossHostAudit",
    "HostSpec",
    "LiveMigration",
    "default_specs",
]
