"""In-sim live migration: pre-copy rounds driven as engine events.

The analytical model (:mod:`repro.placement.migration`) predicts a
migration's round structure; this module *executes* it inside the
shared engine.  A :class:`LiveMigration` owns one VM's move:

- at start, the exact integer-ns
  :class:`~repro.placement.migration.PrecopySchedule` fixes the pause
  and resume instants; each iterative copy round is marked in the
  cluster log as it completes (the VM keeps running — pre-copy is
  transparent except for the link traffic we do not model on the CPU);
- at ``pause`` (start of stop-and-copy) the source system extracts the
  VM: VCPUs vacate their PCPUs and leave the host scheduler, and under
  RTVirt the source admission controller releases the VM's bandwidth
  immediately (shed);
- at ``resume`` the destination adopts it: reservation parameters are
  restored (a source-side shed — e.g. from a host failure — must not
  travel), the destination re-admits the bandwidth, and queued-up jobs
  wake.

The stop-and-copy blackout is published per VCPU as paired
``MIGRATION`` bus events (``layer="cluster"`` on the source bus at
pause, ``layer="cluster_end"`` on the destination bus at resume) so a
multi-attached :class:`~repro.telemetry.spans.SpanBuilder` tiles the
downtime into affected jobs' ``migrating`` bucket.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..placement.migration import PrecopySchedule
from ..simcore.events import PRIORITY_FAULT
from ..telemetry import events as T


class LiveMigration:
    """One VM's pre-copy migration between two cluster hosts."""

    def __init__(
        self,
        cluster,
        vm_name: str,
        source,
        dest,
        schedule: PrecopySchedule,
        safe: bool,
        reservation: Optional[Tuple[int, int]],
    ) -> None:
        self.cluster = cluster
        self.vm_name = vm_name
        self.source = source
        self.dest = dest
        self.schedule = schedule
        #: The analytical safety verdict (downtime fits every RTA's
        #: per-period slack).  Unsafe migrations still execute — the
        #: resulting misses are the point of measuring them.
        self.safe = safe
        #: (budget_ns, period_ns) to restore on the VM's VCPU at adopt
        #: time; ``None`` for weight-scheduled (Credit) VMs.
        self.reservation = reservation
        self.start_ns: Optional[int] = None
        self.pause_ns: Optional[int] = None
        self.resume_ns: Optional[int] = None
        self.done = False

    @property
    def downtime_ns(self) -> int:
        return self.schedule.downtime_ns

    def start(self) -> "LiveMigration":
        engine = self.cluster.engine
        t0 = engine.now
        total = self.schedule.total_duration_ns
        self.start_ns = t0
        self.pause_ns = t0 + total - self.schedule.downtime_ns
        self.resume_ns = t0 + total
        elapsed = 0
        for index, (_bytes, duration_ns) in enumerate(self.schedule.rounds):
            elapsed += duration_ns
            engine.at(
                t0 + elapsed,
                self._make_round_marker(index),
                priority=PRIORITY_FAULT,
                name=f"migrate:round:{self.vm_name}",
            )
        engine.at(
            self.pause_ns,
            self._pause,
            priority=PRIORITY_FAULT,
            name=f"migrate:pause:{self.vm_name}",
        )
        engine.at(
            self.resume_ns,
            self._resume,
            priority=PRIORITY_FAULT,
            name=f"migrate:resume:{self.vm_name}",
        )
        self.cluster._note(
            "migrate_start",
            self.vm_name,
            self.source.name,
            self.dest.name,
            len(self.schedule.rounds) + 1,
            self.schedule.downtime_ns,
            "safe" if self.safe else "unsafe",
        )
        return self

    def _make_round_marker(self, index: int):
        def marker() -> None:
            self.cluster._note(
                "migrate_round", self.vm_name, self.source.name, index
            )

        return marker

    def _blackout_event(self, bus, vcpu_names: List[str], layer: str, time: int) -> None:
        if not bus.has_subscribers(T.MIGRATION):
            return
        for name in vcpu_names:
            bus.publish(
                T.MIGRATION,
                T.MigrationEvent(
                    time, name, self.source.index, self.dest.index, layer
                ),
            )

    def _pause(self) -> None:
        vm = self.cluster.vms[self.vm_name]
        now = self.cluster.engine.now
        vcpu_names = [v.name for v in vm.vcpus]
        # Publish the blackout opening on the source bus *before* the
        # extract detaches the VM — the events belong to the host the
        # memory image still lives on.
        self._blackout_event(self.source.machine.bus, vcpu_names, "cluster", now)
        self.source.system.extract_vm(vm)
        self.source.migrations_out += 1
        self.cluster._note("migrate_pause", self.vm_name, self.source.name)

    def _resume(self) -> None:
        vm = self.cluster.vms[self.vm_name]
        now = self.cluster.engine.now
        if self.reservation is not None:
            budget_ns, period_ns = self.reservation
            for vcpu in vm.vcpus:
                vcpu.set_params(budget_ns, period_ns)
        self.dest.system.adopt_vm(vm)
        self.dest.migrations_in += 1
        self._blackout_event(
            self.dest.machine.bus, [v.name for v in vm.vcpus], "cluster_end", now
        )
        self.cluster._finish_migration(self, vm)
        self.done = True
