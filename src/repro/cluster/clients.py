"""Network-attached sporadic clients and the cross-host deadline audit.

A :class:`ClusterClient` is the cluster analogue of
:class:`~repro.workloads.sporadic.SporadicDriver`: an open-loop client
on the far side of a network link.  Per request it draws, in fixed
stream order, the inter-arrival gap, the request-direction delay and
the reply-direction delay from the link of the host its VM currently
occupies, then delivers the arrival through the cluster's shared
:class:`~repro.workloads.arrivals.ArrivalMux`.

Two latency views come out of one request:

- **end-to-end** (what the client sees): completion plus reply delay,
  minus send time — recorded per client;
- **cross-host deadline**: the deadline is *stamped* in the local clock
  of the host that admitted the release and *checked* against the local
  clock of the host where the job completes.  On a single host the
  offsets cancel and this matches the engine's own deadline accounting
  exactly; across a live migration it can diverge — the
  :class:`CrossHostAudit` counts those outcomes per (release host →
  completion host) pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..guest.task import Task, TaskKind
from ..simcore.errors import ConfigurationError
from ..simcore.rng import RandomSource


class CrossHostAudit:
    """Deadline outcomes under per-host clocks, by host pair."""

    def __init__(self) -> None:
        #: (release host, completion host) -> [met, missed]
        self.pairs: Dict[Tuple[str, str], list] = {}

    def record(self, release_host: str, completion_host: str, met: bool) -> None:
        entry = self.pairs.setdefault((release_host, completion_host), [0, 0])
        entry[0 if met else 1] += 1

    def decided(self, completion_host: Optional[str] = None) -> int:
        return sum(
            met + missed
            for (_, comp), (met, missed) in self.pairs.items()
            if completion_host is None or comp == completion_host
        )

    def missed(self, completion_host: Optional[str] = None) -> int:
        return sum(
            missed
            for (_, comp), (_, missed) in self.pairs.items()
            if completion_host is None or comp == completion_host
        )

    def miss_ratio(self, completion_host: Optional[str] = None) -> float:
        decided = self.decided(completion_host)
        if decided == 0:
            return 0.0
        return self.missed(completion_host) / decided

    def cross_pairs(
        self, completion_host: Optional[str] = None
    ) -> Tuple[int, int]:
        """(decided, missed) over genuinely cross-host pairs only."""
        decided = missed = 0
        for (rel, comp), (met, miss) in self.pairs.items():
            if rel == comp:
                continue
            if completion_host is not None and comp != completion_host:
                continue
            decided += met + miss
            missed += miss
        return decided, missed

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-able per-pair counters (``"src->dst"`` keys, sorted)."""
        return {
            f"{rel}->{comp}": {"met": met, "missed": missed}
            for (rel, comp), (met, missed) in sorted(self.pairs.items())
        }


class ClusterClient:
    """Open-loop sporadic client for one RTA, across the network."""

    def __init__(
        self,
        cluster,
        vm_name: str,
        task: Task,
        rng: RandomSource,
        min_interarrival_ns: int,
        max_interarrival_ns: int,
        deadline_ns: Optional[int] = None,
    ) -> None:
        if task.kind is not TaskKind.SPORADIC:
            raise ConfigurationError(f"{task.name} is not a sporadic task")
        if min_interarrival_ns < task.period_ns:
            raise ConfigurationError(
                "client inter-arrival below the task's minimum inter-arrival "
                f"({min_interarrival_ns} < {task.period_ns})"
            )
        if max_interarrival_ns < min_interarrival_ns:
            raise ConfigurationError("max inter-arrival below min")
        self.cluster = cluster
        self.vm_name = vm_name
        self.task = task
        self.rng = rng
        self.min_interarrival_ns = min_interarrival_ns
        self.max_interarrival_ns = max_interarrival_ns
        self.deadline_ns = task.period_ns if deadline_ns is None else deadline_ns
        self.requests_sent = 0
        self.completed = 0
        #: Client-observed end-to-end latencies' running aggregate.
        self.e2e_total_ns = 0
        self.e2e_max_ns = 0
        self._stopped = False

    def start(self) -> "ClusterClient":
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        gap = self.rng.uniform_int(self.min_interarrival_ns, self.max_interarrival_ns)
        # All of one request's draws happen up front, in fixed order, so
        # the stream stays identical however delivery interleaves.
        link = self.cluster.host_of(self.vm_name).link
        request_delay_ns = link.sample(self.rng)
        reply_delay_ns = link.sample(self.rng)
        send_at = self.cluster.engine.now + gap
        self.cluster.mux.after(
            gap + request_delay_ns,
            lambda: self._arrive(send_at, reply_delay_ns),
        )

    def _arrive(self, send_at: int, reply_delay_ns: int) -> None:
        if self._stopped:
            return
        cluster = self.cluster
        now = cluster.engine.now
        vm = cluster.vms.get(self.vm_name)
        if vm is None:  # the VM was shut down (churn); client goes quiet
            return
        release_host = cluster.host_of(self.vm_name)
        # The admitting host stamps the absolute deadline in ITS clock.
        deadline_stamp = release_host.clock.local(now) + self.deadline_ns
        vm.release_job(
            self.task,
            now=now,
            relative_deadline=self.deadline_ns,
            on_complete=lambda job: self._done(
                job, send_at, reply_delay_ns, release_host, deadline_stamp
            ),
        )
        self.requests_sent += 1
        self._schedule_next()

    def _done(
        self, job, send_at: int, reply_delay_ns: int, release_host, deadline_stamp: int
    ) -> None:
        cluster = self.cluster
        completion_host = cluster.host_of(self.vm_name)
        # The completing host reads ITS clock against the carried stamp.
        met = completion_host.clock.local(job.completed_at) <= deadline_stamp
        cluster.audit.record(release_host.name, completion_host.name, met)
        self.completed += 1
        e2e = job.completed_at + reply_delay_ns - send_at
        self.e2e_total_ns += e2e
        if e2e > self.e2e_max_ns:
            self.e2e_max_ns = e2e
