"""Host descriptions for cluster simulations.

A :class:`HostSpec` is pure configuration — capacity, background
reserve, the host's local :class:`~repro.simcore.clock.HostClock` and
the client-facing :class:`~repro.workloads.netdelay.NetLink`.  A
:class:`ClusterHost` pairs one spec with the live per-host system
(its own machine, host scheduler and telemetry bus) inside the shared
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from ..simcore.clock import HostClock
from ..workloads.netdelay import NetLink


@dataclass(frozen=True)
class HostSpec:
    """Static description of one cluster host."""

    name: str
    pcpu_count: int = 2
    background_reserve: Fraction = Fraction(0)
    clock: HostClock = HostClock()
    link: NetLink = NetLink()


def default_specs(
    count: int,
    pcpu_count: int = 2,
    clock_offset_step_ns: int = 0,
    clock_drift_step_ppb: int = 0,
    link_base_ns: int = 0,
    link_jitter_ns: int = 0,
) -> Tuple[HostSpec, ...]:
    """Uniform hosts ``h0..h{count-1}`` with linearly staggered clocks.

    Host *i* gets offset ``i * clock_offset_step_ns`` and drift
    ``i * clock_drift_step_ppb`` — host 0 is always the reference clock,
    so cross-host deadline divergence grows with host distance.  All
    hosts share one client-link latency distribution.
    """
    link = NetLink(base_ns=link_base_ns, jitter_ns=link_jitter_ns)
    return tuple(
        HostSpec(
            name=f"h{i}",
            pcpu_count=pcpu_count,
            clock=HostClock(
                offset_ns=i * clock_offset_step_ns,
                drift_ppb=i * clock_drift_step_ppb,
            ),
            link=link,
        )
        for i in range(count)
    )


class ClusterHost:
    """One live host: a spec plus its instantiated system."""

    def __init__(self, index: int, spec: HostSpec, system) -> None:
        self.index = index
        self.spec = spec
        self.system = system
        self.name = spec.name
        self.clock = spec.clock
        self.link = spec.link
        self.failed = False
        self.migrations_in = 0
        self.migrations_out = 0

    @property
    def machine(self):
        return self.system.machine

    @property
    def engine(self):
        return self.system.engine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterHost {self.name} pcpus={self.spec.pcpu_count}>"
