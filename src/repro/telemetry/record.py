"""Durable telemetry traces — the flight recorder.

A :class:`TraceRecorder` subscribes to every kind on a
:class:`~repro.telemetry.bus.TelemetryBus` and streams the events to a
compact framed binary format; a :class:`TraceReader` iterates a recorded
trace (optionally filtered by kind or seeked by time) and reconstructs
the exact event ``NamedTuple`` sequence.  Traces are the durable form of
a run: they feed what-if replay (:mod:`repro.telemetry.replay`),
divergence diffing (:mod:`repro.telemetry.diff`) and offline blame
(``repro explain <trace>``).

Format ``RTVT`` version 1::

    magic    b"RTVT" + version byte 0x01
    header   uvarint length + compact JSON (utf-8) — who/what was recorded
    body     frames until the end tag:
      0x01   intern: uvarint byte-length + utf-8 payload; the string is
             assigned the next sequential id in the table
      0x02   event: uvarint kind id (index into ALL_KINDS) + zigzag
             varint time delta from the previous event + per-field codecs
      0x03   section: uvarint byte-length + utf-8 label; resets the
             intern table and the delta-time base (merge boundary)
      0x00   end of body
    trailer  compact JSON {events, counts, hash, strings, checkpoints,
             sections, meta} + 8-byte LE length + b"RTVT"

Field codecs are derived from the event ``NamedTuple`` annotations:
``int`` is a zigzag varint, ``str`` an interned id, ``Optional[str]`` a
presence byte + id, ``bool`` one byte, and ``Tuple`` a tagged
heterogeneous sequence.  The canonical trace hash is the sha256 over the
body bytes: two runs publish the same event sequence iff their traces
hash identically, and a merge of per-unit traces in canonical order is
byte-identical however the units were executed.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from functools import partial
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from . import events as ev
from .events import ALL_KINDS

MAGIC = b"RTVT"
VERSION = 1

_TAG_INTERN = 0x01
_TAG_EVENT = 0x02
_TAG_SECTION = 0x03
_TAG_END = 0x00

#: Events between trailer checkpoints (seek granularity).
CHECKPOINT_EVERY = 4096
#: Write-buffer flush threshold, bytes.
_FLUSH_BYTES = 256 * 1024

#: kind -> event class.  Hand-written so a missing entry is a loud test
#: failure (``test_record.py`` asserts coverage of ``ALL_KINDS``) rather
#: than a silent recording gap.
EVENT_CLASSES = {
    ev.JOB_RELEASE: ev.JobReleaseEvent,
    ev.ENQUEUE: ev.EnqueueEvent,
    ev.CONTEXT_SWITCH: ev.ContextSwitchEvent,
    ev.MIGRATION: ev.MigrationEvent,
    ev.SEGMENT_END: ev.SegmentEndEvent,
    ev.DEADLINE_HIT: ev.DeadlineHitEvent,
    ev.DEADLINE_MISS: ev.DeadlineMissEvent,
    ev.JOB_LATENCY: ev.JobLatencyEvent,
    ev.JOB_COMPLETE: ev.JobCompleteEvent,
    ev.HYPERCALL: ev.HypercallEvent,
    ev.BUDGET_REPLENISH: ev.BudgetReplenishEvent,
    ev.BUDGET_DEPLETE: ev.BudgetDepleteEvent,
    ev.ADMISSION_DECISION: ev.AdmissionDecisionEvent,
    ev.FAULT_INJECTED: ev.FaultInjectedEvent,
    ev.FAULT_RECOVERED: ev.FaultRecoveredEvent,
    ev.CPU_ACCOUNT: ev.CpuAccountEvent,
    ev.VCPU_PARAMS: ev.VcpuParamsEvent,
}

KIND_IDS: Dict[str, int] = {kind: i for i, kind in enumerate(ALL_KINDS)}

# Field codec tags (annotation string -> codec).
_C_INT = 0
_C_STR = 1
_C_OPT_STR = 2
_C_BOOL = 3
_C_TUPLE = 4
_C_VALUE = 5  # tagged scalar — fields whose runtime type varies

_ANNOTATION_CODECS = {
    "int": _C_INT,
    "str": _C_STR,
    "Optional[str]": _C_OPT_STR,
    "bool": _C_BOOL,
    "Tuple": _C_TUPLE,
}

#: Fields whose producers deviate from the annotation —
#: ``HypercallEvent.flag`` carries the ``SchedRTVirtFlag`` enum *value*,
#: which is a string.
_FIELD_OVERRIDES = {("HypercallEvent", "flag"): _C_VALUE}


def _field_codecs(cls) -> Tuple[int, ...]:
    annotations = list(cls.__annotations__.items())
    if not annotations or annotations[0][0] != "time":
        raise TypeError(f"{cls.__name__}: first field must be 'time'")
    codecs = []
    for name, annotation in annotations[1:]:
        override = _FIELD_OVERRIDES.get((cls.__name__, name))
        if override is not None:
            codecs.append(override)
            continue
        if not isinstance(annotation, str):  # typing wraps these in ForwardRef
            annotation = getattr(annotation, "__forward_arg__", repr(annotation))
        try:
            codecs.append(_ANNOTATION_CODECS[annotation])
        except KeyError:
            raise TypeError(
                f"{cls.__name__}.{name}: no codec for annotation {annotation!r}"
            ) from None
    return tuple(codecs)


#: kind id -> (event class, per-field codec tags after ``time``).
_SCHEMAS: List[Tuple[type, Tuple[int, ...]]] = [
    (EVENT_CLASSES[kind], _field_codecs(EVENT_CLASSES[kind])) for kind in ALL_KINDS
]


# -- varint primitives ----------------------------------------------------------------


def _uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _svarint(out: bytearray, value: int) -> None:
    _uvarint(out, (value << 1) if value >= 0 else ((-value) << 1) - 1)


def _zigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _read_uvarint(data, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_svarint(data, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return _zigzag(raw), pos


# -- writer ---------------------------------------------------------------------------


class TraceWriter:
    """Low-level framed writer.  Most callers want :class:`TraceRecorder`."""

    def __init__(self, path: Optional[str] = None, header: Optional[dict] = None):
        self.path = path
        self._sink = open(path, "wb") if path else io.BytesIO()
        self._buf = bytearray()
        self._hash = hashlib.sha256()
        self._strings: Dict[str, int] = {}
        self._prev_time = 0
        self._events = 0
        self._counts: Dict[str, int] = {}
        self._checkpoints: List[List[int]] = []
        self._sections: List[dict] = []
        self._body_bytes = 0
        self._closed = False
        head = bytearray(MAGIC)
        head.append(VERSION)
        payload = json.dumps(
            header or {}, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        _uvarint(head, len(payload))
        head += payload
        self._sink.write(bytes(head))

    # body framing

    def _flush(self) -> None:
        if self._buf:
            chunk = bytes(self._buf)
            self._hash.update(chunk)
            self._sink.write(chunk)
            self._body_bytes += len(chunk)
            self._buf.clear()

    def _intern(self, text: str) -> int:
        idx = self._strings.get(text)
        if idx is None:
            idx = len(self._strings)
            self._strings[text] = idx
            payload = text.encode("utf-8")
            self._buf.append(_TAG_INTERN)
            _uvarint(self._buf, len(payload))
            self._buf += payload
        return idx

    def _encode_item(self, out: bytearray, item) -> None:
        if item is None:
            out.append(0)
        elif item is True or item is False:
            out.append(3)
            out.append(1 if item else 0)
        elif isinstance(item, int):
            out.append(1)
            _svarint(out, item)
        elif isinstance(item, str):
            out.append(2)
            _uvarint(out, self._intern(item))
        elif isinstance(item, float):
            out.append(4)
            out += struct.pack("<d", item)
        elif isinstance(item, tuple):
            out.append(5)
            self._encode_tuple(out, item)
        else:
            raise TypeError(f"unsupported detail item {item!r}")

    def _encode_tuple(self, out: bytearray, items: tuple) -> None:
        _uvarint(out, len(items))
        for item in items:
            self._encode_item(out, item)

    def write_event(self, kind: str, event) -> None:
        if (
            self._events
            and self._events % CHECKPOINT_EVERY == 0
            and not self._sections
        ):
            self._checkpoints.append(
                [
                    self._body_bytes + len(self._buf),
                    self._events,
                    self._prev_time,
                    len(self._strings),
                ]
            )
        kind_id = KIND_IDS[kind]
        codecs = _SCHEMAS[kind_id][1]
        frame = bytearray()
        frame.append(_TAG_EVENT)
        _uvarint(frame, kind_id)
        t = event[0]
        _svarint(frame, t - self._prev_time)
        self._prev_time = t
        for codec, value in zip(codecs, event[1:]):
            if codec == _C_INT:
                _svarint(frame, value)
            elif codec == _C_STR:
                _uvarint(frame, self._intern(value))
            elif codec == _C_OPT_STR:
                if value is None:
                    frame.append(0)
                else:
                    frame.append(1)
                    _uvarint(frame, self._intern(value))
            elif codec == _C_BOOL:
                frame.append(1 if value else 0)
            elif codec == _C_VALUE:
                self._encode_item(frame, value)
            else:
                self._encode_tuple(frame, tuple(value))
        self._buf += frame
        self._events += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if len(self._buf) >= _FLUSH_BYTES:
            self._flush()

    # merge support: append a whole recorded body as one labelled section

    def write_section(self, label: str, reader: "TraceReader") -> None:
        self._flush()
        frame = bytearray()
        frame.append(_TAG_SECTION)
        payload = label.encode("utf-8")
        _uvarint(frame, len(payload))
        frame += payload
        self._buf += frame
        self._flush()
        offset = self._body_bytes
        body = reader.body_bytes()
        self._hash.update(body)
        self._sink.write(body)
        self._body_bytes += len(body)
        self._events += reader.event_count
        for kind, count in reader.counts.items():
            self._counts[kind] = self._counts.get(kind, 0) + count
        self._sections.append(
            {
                "label": label,
                "offset": offset,
                "events": reader.event_count,
                "hash": reader.trace_hash,
            }
        )
        # section state resets for any subsequent direct writes
        self._strings = {}
        self._prev_time = 0

    def close(self, meta: Optional[dict] = None):
        """Finish the trace; returns the in-memory bytes when unpathed."""
        if self._closed:
            return None
        self._closed = True
        self._flush()
        trailer = {
            "events": self._events,
            "counts": dict(sorted(self._counts.items())),
            "hash": self._hash.hexdigest(),
            "strings": (
                None if self._sections else list(self._strings)
            ),
            "checkpoints": self._checkpoints,
            "sections": self._sections,
            "meta": meta or {},
        }
        payload = json.dumps(trailer, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        self._sink.write(bytes([_TAG_END]))
        self._sink.write(payload)
        self._sink.write(struct.pack("<Q", len(payload)))
        self._sink.write(MAGIC)
        if self.path:
            self._sink.close()
            return None
        data = self._sink.getvalue()
        self._sink.close()
        return data


# -- recorder (bus subscriber) --------------------------------------------------------


class TraceRecorder:
    """Subscribe to every telemetry kind and stream events to a trace.

    Construction is free; the writer and the bus subscriptions only
    exist between :meth:`attach` and :meth:`close` — a detached recorder
    adds nothing to the zero-subscriber fast path.
    """

    def __init__(self, path: Optional[str] = None, header: Optional[dict] = None):
        self.path = path
        self.header = dict(header or {})
        self._writer: Optional[TraceWriter] = None
        self._unsubscribes: List = []

    def attach(self, bus, kinds: Sequence[str] = ALL_KINDS) -> "TraceRecorder":
        if self._writer is None:
            self._writer = TraceWriter(self.path, self.header)
        write = self._writer.write_event
        for kind in kinds:
            self._unsubscribes.append(bus.subscribe(kind, partial(write, kind)))
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    @property
    def event_count(self) -> int:
        return self._writer._events if self._writer else 0

    def close(self, meta: Optional[dict] = None):
        """Detach and finalize; returns trace bytes when path is None."""
        self.detach()
        if self._writer is None:
            self._writer = TraceWriter(self.path, self.header)
        return self._writer.close(meta)


# -- reader ---------------------------------------------------------------------------


class TraceReader:
    """Parse a recorded trace from a path or raw bytes."""

    def __init__(self, source):
        if isinstance(source, (bytes, bytearray)):
            data = bytes(source)
            self.path = None
        else:
            self.path = source
            with open(source, "rb") as handle:
                data = handle.read()
        if data[:4] != MAGIC or data[4] != VERSION:
            raise ValueError("not an RTVT v1 trace")
        header_len, pos = _read_uvarint(data, 5)
        self.header: dict = json.loads(data[pos : pos + header_len])
        self._body_start = pos + header_len
        if data[-4:] != MAGIC:
            raise ValueError("truncated trace: missing trailer magic")
        (trailer_len,) = struct.unpack("<Q", data[-12:-4])
        trailer_start = len(data) - 12 - trailer_len
        trailer = json.loads(data[trailer_start : len(data) - 12])
        self._body_end = trailer_start - 1
        if data[self._body_end] != _TAG_END:
            raise ValueError("corrupt trace: body end tag missing")
        self._data = data
        self.event_count: int = trailer["events"]
        self.counts: Dict[str, int] = trailer["counts"]
        self.trace_hash: str = trailer["hash"]
        self.strings: Optional[List[str]] = trailer["strings"]
        self.checkpoints: List[List[int]] = trailer["checkpoints"]
        self.sections: List[dict] = trailer["sections"]
        self.meta: dict = trailer.get("meta", {})

    def body_bytes(self) -> bytes:
        return self._data[self._body_start : self._body_end]

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def _decode_item(self, data, pos: int, table: List[str]):
        tag = data[pos]
        pos += 1
        if tag == 0:
            return None, pos
        if tag == 1:
            return _read_svarint(data, pos)
        if tag == 2:
            idx, pos = _read_uvarint(data, pos)
            return table[idx], pos
        if tag == 3:
            return bool(data[pos]), pos + 1
        if tag == 4:
            (value,) = struct.unpack_from("<d", data, pos)
            return value, pos + 8
        return self._decode_tuple(data, pos, table)

    def _decode_tuple(self, data, pos: int, table: List[str]) -> Tuple[tuple, int]:
        n, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(n):
            item, pos = self._decode_item(data, pos, table)
            items.append(item)
        return tuple(items), pos

    def events(
        self,
        kinds: Optional[Iterable[str]] = None,
        start_time: Optional[int] = None,
    ) -> Iterator[Tuple[str, tuple]]:
        """Yield ``(kind, event)`` in recorded order.

        *kinds* filters to a subset of routing keys; *start_time* skips
        ahead using the trailer checkpoints (single-section traces) so a
        late window does not pay for decoding the whole prefix.
        """
        wanted = set(kinds) if kinds is not None else None
        data = self._data
        pos = self._body_start
        table: List[str] = []
        prev_time = 0
        if start_time is not None and self.checkpoints and self.strings is not None:
            best = None
            for offset, _count, cp_time, n_strings in self.checkpoints:
                if cp_time <= start_time:
                    best = (offset, cp_time, n_strings)
                else:
                    break
            if best is not None:
                pos = self._body_start + best[0]
                prev_time = best[1]
                table = list(self.strings[: best[2]])
        end = self._body_end
        while pos < end:
            tag = data[pos]
            pos += 1
            if tag == _TAG_INTERN:
                length, pos = _read_uvarint(data, pos)
                table.append(data[pos : pos + length].decode("utf-8"))
                pos += length
            elif tag == _TAG_EVENT:
                kind_id, pos = _read_uvarint(data, pos)
                delta, pos = _read_svarint(data, pos)
                prev_time += delta
                cls, codecs = _SCHEMAS[kind_id]
                fields: List = [prev_time]
                for codec in codecs:
                    if codec == _C_INT:
                        value, pos = _read_svarint(data, pos)
                    elif codec == _C_STR:
                        idx, pos = _read_uvarint(data, pos)
                        value = table[idx]
                    elif codec == _C_OPT_STR:
                        flag = data[pos]
                        pos += 1
                        if flag:
                            idx, pos = _read_uvarint(data, pos)
                            value = table[idx]
                        else:
                            value = None
                    elif codec == _C_BOOL:
                        value = bool(data[pos])
                        pos += 1
                    elif codec == _C_VALUE:
                        value, pos = self._decode_item(data, pos, table)
                    else:
                        value, pos = self._decode_tuple(data, pos, table)
                    fields.append(value)
                if start_time is not None and prev_time < start_time:
                    continue
                kind = ALL_KINDS[kind_id]
                if wanted is None or kind in wanted:
                    yield kind, cls._make(fields)
            elif tag == _TAG_SECTION:
                length, pos = _read_uvarint(data, pos)
                pos += length
                table = []
                prev_time = 0
            else:
                raise ValueError(f"corrupt trace: unknown frame tag {tag:#x}")


def merge_traces(
    parts: Sequence[Tuple[str, object]],
    header: Optional[dict] = None,
    path: Optional[str] = None,
):
    """Concatenate recorded traces into one sectioned trace.

    *parts* is ``(label, source)`` pairs in canonical order; each source
    is anything :class:`TraceReader` accepts.  Merging is byte-stable:
    the same parts in the same order always produce the same file, no
    matter how (or where) the parts were recorded.  Returns the merged
    bytes when *path* is None.
    """
    writer = TraceWriter(path, header or {"merged": [label for label, _ in parts]})
    for label, source in parts:
        reader = source if isinstance(source, TraceReader) else TraceReader(source)
        writer.write_section(label, reader)
    return writer.close()
