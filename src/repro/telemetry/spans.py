"""Causal per-job spans stitched from the flat telemetry event stream.

PR 4's bus tells us *what* happened (a deadline missed, a budget
drained); it cannot say *why* a particular job was late.  The
:class:`SpanBuilder` closes that gap: it subscribes to the existing
event kinds and stitches them into one **span** per released job —

    release → enqueue → dispatch segments → (preemptions, migrations,
    budget stalls) → completion

keyed by ``(vm, vcpu, task, job)``.  After :meth:`finalize`, every
span's window ``[release, completion]`` is tiled into labelled
intervals, each classified into exactly one bucket:

``run``
    the job itself executed (its ``SEGMENT_END`` charge windows);
``migrating``
    its carrier VCPU was paying a host migration penalty;
``preempted``
    its carrier VCPU held no PCPU (host-level preemption, budget
    depletion, admission throttling — :mod:`repro.telemetry.blame`
    subdivides this bucket by cause);
``wait``
    the carrier VCPU was on a PCPU but the guest scheduler ran a
    different job (guest queueing).

The classification is a *partition by priority* (run > migrating >
preempted > wait), so the four bucket totals sum **exactly** to the
job's response time — an integer-arithmetic invariant the property
suite pins for every synthetic workload.

The builder is a pure consumer: it subscribes like any other bus
client, so an unattached simulation pays nothing (the zero-subscriber
fast path), and an attached one pays only event fan-out.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Dict, List, Optional, Tuple

from . import events as T

Interval = Tuple[int, int]

#: Bucket names, in classification priority order.
BUCKETS = ("run", "migrating", "preempted", "wait")


# -- integer interval arithmetic (sorted, disjoint, half-open [s, e)) ------------------


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Sort and coalesce overlapping/adjacent intervals; drops empties."""
    out: List[Interval] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out


def clip_intervals(intervals: List[Interval], lo: int, hi: int) -> List[Interval]:
    """The merged portion of *intervals* inside ``[lo, hi)``."""
    out: List[Interval] = []
    for start, end in intervals:
        start, end = max(start, lo), min(end, hi)
        if end > start:
            out.append((start, end))
    return merge_intervals(out)


def subtract_intervals(base: List[Interval], cut: List[Interval]) -> List[Interval]:
    """``base`` minus ``cut``; both sorted and disjoint."""
    out: List[Interval] = []
    cut = merge_intervals(list(cut))
    for start, end in base:
        pos = start
        for c_start, c_end in cut:
            if c_end <= pos:
                continue
            if c_start >= end:
                break
            if c_start > pos:
                out.append((pos, c_start))
            pos = max(pos, c_end)
            if pos >= end:
                break
        if pos < end:
            out.append((pos, end))
    return out


def total(intervals: List[Interval]) -> int:
    return sum(end - start for start, end in intervals)


class Span:
    """One job's causal history, from release to completion (or horizon)."""

    __slots__ = (
        "vm",
        "vcpu",
        "task",
        "job",
        "release",
        "deadline",
        "enqueue_time",
        "enqueue_scope",
        "completed_at",
        "missed",
        "tardiness",
        "segments",
        "guest_migrations",
        "end",
        "incomplete",
        "intervals",
        "buckets",
    )

    def __init__(
        self,
        vm: str,
        vcpu: Optional[str],
        task: str,
        job: int,
        release: int,
        deadline: int,
    ) -> None:
        self.vm = vm
        self.vcpu = vcpu  # pinned VCPU at release time (may be None)
        self.task = task
        self.job = job
        self.release = release
        self.deadline = deadline
        self.enqueue_time: Optional[int] = None
        self.enqueue_scope: Optional[str] = None
        self.completed_at: Optional[int] = None
        self.missed = False
        self.tardiness = 0
        #: (start, end, pcpu, vcpu name) execution charge windows.
        self.segments: List[Tuple[int, int, int, str]] = []
        #: (time, source vcpu index, target vcpu index) gEDF claims.
        self.guest_migrations: List[Tuple[int, int, int]] = []
        # Filled by SpanBuilder.finalize():
        self.end: Optional[int] = None
        self.incomplete = False
        #: (start, end, bucket, vcpu, pcpu) tiling of [release, end].
        self.intervals: List[Tuple[int, int, str, Optional[str], Optional[int]]] = []
        self.buckets: Dict[str, int] = {}

    @property
    def key(self) -> Tuple[str, int]:
        return (self.task, self.job)

    @property
    def response_time(self) -> Optional[int]:
        if self.end is None:
            return None
        return self.end - self.release

    @property
    def lateness(self) -> int:
        """Nanoseconds past the deadline (0 when met or undecided)."""
        if self.end is None or self.end <= self.deadline:
            return 0
        return self.end - self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "incomplete" if self.incomplete else (
            "miss" if self.missed else "ok"
        )
        return f"<Span {self.task}#{self.job} rel={self.release} {state}>"


class SpanBuilder:
    """Stitches bus events into per-job :class:`Span` objects.

    Usage::

        builder = SpanBuilder().attach(system.machine)
        system.run(duration)
        builder.finalize()
        builder.spans  # every deadline-bearing job, in release order
    """

    def __init__(self, migration_ns: Optional[int] = None) -> None:
        self.spans: List[Span] = []
        self._open: Dict[str, deque] = {}  # task name -> FIFO of open spans
        self._by_key: Dict[Tuple[str, int], Span] = {}
        # Carrier-side interval sources, keyed by VCPU name (globally
        # unique, so they survive multi-machine attachment unscoped):
        self._oncpu: Dict[str, List[Interval]] = {}
        #: (scope, pcpu) -> (vcpu, since); the scope label separates
        #: equal PCPU indices of different hosts under multi-attach.
        self._pcpu_occupant: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._depleted: Dict[str, List[Interval]] = {}
        self._depleted_open: Dict[str, int] = {}
        self._throttled: Dict[str, List[Interval]] = {}
        self._throttled_open: Dict[str, int] = {}
        self._migrations: Dict[str, List[Interval]] = {}
        #: Open cluster stop-and-copy blackouts: vcpu name -> pause time.
        self._blackout_open: Dict[str, int] = {}
        self._hypercall_faults: List[Interval] = []
        self._migration_ns = migration_ns
        self._machine = None
        self._unsubscribe = None
        self._finalized = False

    # -- wiring -----------------------------------------------------------------------

    def attach(self, machine, replace: bool = True, scope: str = "") -> "SpanBuilder":
        """Subscribe to *machine*'s bus.

        With ``replace=True`` (default) any previous attachment is
        dropped first — the single-host usage.  ``replace=False`` *adds*
        the machine to the subscription set instead, letting one builder
        observe every host of a cluster so a span survives live
        migration (its release may be published on one host's bus and
        its completion on another's; VCPU and task names are globally
        unique, so carrier timelines stitch across buses).  *scope*
        disambiguates PCPU indices between hosts — give each machine a
        distinct label (e.g. the host name) when multi-attaching.
        """
        if replace:
            self.detach()
            self._machine = machine
        elif self._machine is None:
            self._machine = machine
        return self.attach_bus(
            machine.bus, migration_ns=machine.costs.migration_ns, scope=scope
        )

    def attach_bus(
        self, bus, migration_ns: Optional[int] = None, scope: str = ""
    ) -> "SpanBuilder":
        """Subscribe to a bare bus (no machine).

        The offline path: ``repro explain <trace>`` pumps a recorded
        trace through a private bus and needs span assembly without a
        live machine.  *migration_ns* substitutes for the machine's cost
        model when the builder was constructed without one.
        """
        if self._migration_ns is None:
            self._migration_ns = migration_ns
        cancels = [
            bus.subscribe(T.JOB_RELEASE, self._on_release),
            bus.subscribe(T.ENQUEUE, self._on_enqueue),
            bus.subscribe(T.SEGMENT_END, self._on_segment),
            bus.subscribe(T.JOB_COMPLETE, self._on_complete),
            bus.subscribe(T.DEADLINE_HIT, self._on_hit),
            bus.subscribe(T.DEADLINE_MISS, self._on_miss),
            bus.subscribe(T.CONTEXT_SWITCH, partial(self._on_switch, scope)),
            bus.subscribe(T.MIGRATION, self._on_migration),
            bus.subscribe(T.BUDGET_DEPLETE, self._on_deplete),
            bus.subscribe(T.BUDGET_REPLENISH, self._on_replenish),
            bus.subscribe(T.ADMISSION_DECISION, self._on_admission),
            bus.subscribe(T.FAULT_INJECTED, self._on_fault),
        ]
        previous = self._unsubscribe

        def unsubscribe() -> None:
            for cancel in cancels:
                cancel()
            if previous is not None:
                previous()

        self._unsubscribe = unsubscribe
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- producers' event handlers ------------------------------------------------------

    def _on_release(self, event: T.JobReleaseEvent) -> None:
        span = Span(
            event.vm, event.vcpu, event.task, event.job,
            event.release, event.deadline,
        )
        self.spans.append(span)
        self._open.setdefault(event.task, deque()).append(span)
        self._by_key[span.key] = span

    def _on_enqueue(self, event: T.EnqueueEvent) -> None:
        span = self._by_key.get((event.task, event.job))
        if span is not None and span.enqueue_time is None:
            span.enqueue_time = event.time
            span.enqueue_scope = event.scope

    def _on_segment(self, event: T.SegmentEndEvent) -> None:
        # Within a task, jobs execute FIFO (``Task.head_job`` under both
        # pEDF and gEDF), so a charge window always belongs to the
        # oldest open span of its task.
        spans = self._open.get(event.task)
        if spans and event.end > event.start:
            spans[0].segments.append(
                (event.start, event.end, event.pcpu, event.vcpu)
            )

    def _on_complete(self, event: T.JobCompleteEvent) -> None:
        spans = self._open.get(event.task)
        if not spans:
            return
        # The completing job is almost always the FIFO front; scan
        # defensively in case an abandoned sibling lingers ahead of it.
        for i, span in enumerate(spans):
            if span.job == event.job:
                del spans[i]
                break
        else:
            return
        if not spans:
            del self._open[event.task]
        span.completed_at = event.time

    def _on_hit(self, event: T.DeadlineHitEvent) -> None:
        span = self._by_key.get((event.task, event.job))
        if span is not None:
            span.missed = False

    def _on_miss(self, event: T.DeadlineMissEvent) -> None:
        span = self._by_key.get((event.task, event.job))
        if span is not None:
            span.missed = True
            span.tardiness = event.tardiness

    def _on_switch(self, scope: str, event: T.ContextSwitchEvent) -> None:
        key = (scope, event.pcpu)
        previous = self._pcpu_occupant.pop(key, None)
        if previous is not None:
            name, since = previous
            if event.time > since:
                self._oncpu.setdefault(name, []).append((since, event.time))
        if event.vcpu is not None:
            self._pcpu_occupant[key] = (event.vcpu, event.time)

    def _on_migration(self, event: T.MigrationEvent) -> None:
        if event.layer == "guest":
            spans = self._open.get(event.entity)
            if spans:
                spans[0].guest_migrations.append(
                    (event.time, event.source, event.target)
                )
            return
        if event.layer == "cluster":
            # Live migration stop-and-copy began: the VCPU is paused
            # until the matching "cluster_end" on the destination bus.
            self._blackout_open.setdefault(event.entity, event.time)
            return
        if event.layer == "cluster_end":
            start = self._blackout_open.pop(event.entity, None)
            if start is not None and event.time > start:
                self._migrations.setdefault(event.entity, []).append(
                    (start, event.time)
                )
            return
        cost = self._migration_ns or 0
        if cost > 0:
            self._migrations.setdefault(event.entity, []).append(
                (event.time, event.time + cost)
            )

    def _on_deplete(self, event: T.BudgetDepleteEvent) -> None:
        self._depleted_open.setdefault(event.vcpu, event.time)

    def _on_replenish(self, event: T.BudgetReplenishEvent) -> None:
        start = self._depleted_open.pop(event.vcpu, None)
        if start is not None and event.time > start:
            self._depleted.setdefault(event.vcpu, []).append((start, event.time))

    def _on_admission(self, event: T.AdmissionDecisionEvent) -> None:
        if event.level != "host":
            return
        if event.op == "shed" and not event.granted:
            self._throttled_open.setdefault(event.subject, event.time)
        elif event.granted:
            start = self._throttled_open.pop(event.subject, None)
            if start is not None and event.time > start:
                self._throttled.setdefault(event.subject, []).append(
                    (start, event.time)
                )

    def _on_fault(self, event: T.FaultInjectedEvent) -> None:
        if event.fault == "hypercall_drop" and event.detail:
            duration = int(event.detail[0])
            self._hypercall_faults.append((event.time, event.time + duration))
        elif event.fault == "hypercall_delay" and len(event.detail) >= 2:
            duration = int(event.detail[1])
            self._hypercall_faults.append((event.time, event.time + duration))

    # -- finalisation -------------------------------------------------------------------

    def finalize(self, end_time: Optional[int] = None) -> "SpanBuilder":
        """Close open state at *end_time* and tile every span's window.

        Idempotent; *end_time* defaults to the attached machine's clock.
        """
        if self._finalized:
            return self
        self._finalized = True
        if end_time is None:
            if self._machine is None:
                raise ValueError("finalize() needs end_time when unattached")
            end_time = self._machine.engine.now
        for _key, (name, since) in sorted(self._pcpu_occupant.items()):
            if end_time > since:
                self._oncpu.setdefault(name, []).append((since, end_time))
        self._pcpu_occupant.clear()
        for name, start in sorted(self._depleted_open.items()):
            if end_time > start:
                self._depleted.setdefault(name, []).append((start, end_time))
        self._depleted_open.clear()
        for name, start in sorted(self._throttled_open.items()):
            if end_time > start:
                self._throttled.setdefault(name, []).append((start, end_time))
        self._throttled_open.clear()
        for name, start in sorted(self._blackout_open.items()):
            if end_time > start:
                self._migrations.setdefault(name, []).append((start, end_time))
        self._blackout_open.clear()
        for name in self._oncpu:
            self._oncpu[name] = merge_intervals(self._oncpu[name])
        for name in self._migrations:
            self._migrations[name] = merge_intervals(self._migrations[name])
        self._hypercall_faults = merge_intervals(self._hypercall_faults)
        for span in self.spans:
            self._tile(span, end_time)
        return self

    def _tile(self, span: Span, horizon: int) -> None:
        """Partition ``[release, end]`` into run/migrating/preempted/wait."""
        if span.completed_at is not None:
            span.end = span.completed_at
        else:
            span.end = horizon
            span.incomplete = True
            if span.deadline < horizon:
                # Abandoned past its deadline: a miss the completion-side
                # events never report (no JOB_COMPLETE was published).
                span.missed = True
                span.tardiness = horizon - span.deadline
        window_lo, window_hi = span.release, span.end
        intervals: List[Tuple[int, int, str, Optional[str], Optional[int]]] = []
        pos = window_lo
        last_vcpu: Optional[str] = span.vcpu
        for start, end, pcpu, vcpu in span.segments:
            start, end = max(start, window_lo), min(end, window_hi)
            if end <= start:
                continue
            if start > pos:
                # The carrier that eventually ran the job is the one it
                # was queued behind during the gap.
                intervals.extend(self._classify_gap(pos, start, vcpu))
            intervals.append((start, end, "run", vcpu, pcpu))
            pos = max(pos, end)
            last_vcpu = vcpu
        if pos < window_hi:
            intervals.extend(self._classify_gap(pos, window_hi, last_vcpu))
        span.intervals = intervals
        buckets = dict.fromkeys(BUCKETS, 0)
        for start, end, bucket, _vcpu, _pcpu in intervals:
            buckets[bucket] += end - start
        span.buckets = buckets

    def _classify_gap(
        self, lo: int, hi: int, carrier: Optional[str]
    ) -> List[Tuple[int, int, str, Optional[str], Optional[int]]]:
        """Split a non-run gap into migrating / preempted / wait pieces."""
        if carrier is None:
            # The job never ran and its task had no pin at release: no
            # carrier timeline exists, so the whole gap is guest wait.
            return [(lo, hi, "wait", None, None)]
        gap = [(lo, hi)]
        out: List[Tuple[int, int, str, Optional[str], Optional[int]]] = []
        migrating = clip_intervals(self._migrations.get(carrier, []), lo, hi)
        for start, end in migrating:
            out.append((start, end, "migrating", carrier, None))
        rest = subtract_intervals(gap, migrating)
        oncpu = self._oncpu.get(carrier, [])
        for start, end in rest:
            queued = clip_intervals(oncpu, start, end)
            for q_start, q_end in queued:
                out.append((q_start, q_end, "wait", carrier, None))
            for p_start, p_end in subtract_intervals([(start, end)], queued):
                out.append((p_start, p_end, "preempted", carrier, None))
        out.sort(key=lambda item: (item[0], item[1]))
        return out

    # -- queries ------------------------------------------------------------------------

    def spans_for(self, task: str) -> List[Span]:
        return [s for s in self.spans if s.task == task]

    def missed_spans(self) -> List[Span]:
        """Spans past their deadline (completed late or abandoned)."""
        return [s for s in self.spans if s.missed]

    def depleted_windows(self, vcpu: str) -> List[Interval]:
        return list(self._depleted.get(vcpu, []))

    def throttled_windows(self, vcpu: str) -> List[Interval]:
        return list(self._throttled.get(vcpu, []))

    def hypercall_fault_windows(self) -> List[Interval]:
        return list(self._hypercall_faults)
