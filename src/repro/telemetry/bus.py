"""The telemetry bus: typed pub/sub with a zero-subscriber fast path.

Producers sit on the simulation hot path (``Machine.sync_pcpu`` runs on
every scheduling decision), so the bus is built around one invariant:
**when nothing subscribes to a kind, emitting that kind costs one
cached attribute test at the producer and nothing here.**  Two
mechanisms deliver that:

* ``has_subscribers(kind)`` is a plain dict-membership test — the
  subscriber table drops a kind's key the moment its last handler
  unsubscribes, so the check never scans lists.
* ``watch(callback)`` lets producers cache the answer: the callback
  fires on every (un)subscribe, and producers refresh plain boolean
  attributes (``machine._t_segment`` etc.) that their hot paths test
  directly.  The bus is not consulted at all between subscription
  changes.

Handlers run synchronously, in subscription order, on the simulated
timeline — a handler that mutates the system under test will perturb
it, so consumers should only record.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

Handler = Callable[[Any], None]
WatchCallback = Callable[["TelemetryBus"], None]


class TelemetryBus:
    """Per-kind synchronous pub/sub for telemetry events."""

    __slots__ = ("_subscribers", "_watchers", "_profile")

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Handler]] = {}
        self._watchers: List[WatchCallback] = []
        #: Optional self-profiler (see :mod:`repro.telemetry.profile`).
        #: Checked only after the zero-subscriber early return, so the
        #: fast path is untouched while nothing subscribes.
        self._profile = None

    # -- subscription -----------------------------------------------------------------

    def subscribe(self, kind: str, handler: Handler) -> Callable[[], None]:
        """Attach *handler* to *kind*; returns an unsubscribe callable.

        The unsubscribe callable is idempotent: calling it twice (or
        after the handler was removed another way) is a no-op.
        """
        self._subscribers.setdefault(kind, []).append(handler)
        self._notify_watchers()
        removed = False

        def unsubscribe() -> None:
            nonlocal removed
            if removed:
                return
            removed = True
            handlers = self._subscribers.get(kind)
            if handlers is None:
                return
            try:
                handlers.remove(handler)
            except ValueError:
                return
            if not handlers:
                # Drop the key so has_subscribers stays a membership test.
                del self._subscribers[kind]
            self._notify_watchers()

        return unsubscribe

    def subscribe_many(self, kinds, handler: Handler) -> Callable[[], None]:
        """Attach one handler to several kinds; one unsubscribe for all."""
        cancels = [self.subscribe(kind, handler) for kind in kinds]

        def unsubscribe() -> None:
            for cancel in cancels:
                cancel()

        return unsubscribe

    # -- interest tracking ------------------------------------------------------------

    def has_subscribers(self, kind: str) -> bool:
        """True when at least one handler listens for *kind*."""
        return kind in self._subscribers

    def watch(self, callback: WatchCallback) -> Callable[[], None]:
        """Run *callback* now and after every (un)subscribe.

        Producers use this to cache per-kind interest flags; the
        immediate invocation means a producer attached to a bus that
        already has subscribers starts with correct flags.
        """
        self._watchers.append(callback)
        callback(self)

        def unwatch() -> None:
            try:
                self._watchers.remove(callback)
            except ValueError:
                pass

        return unwatch

    def _notify_watchers(self) -> None:
        for callback in list(self._watchers):
            callback(self)

    # -- publication ------------------------------------------------------------------

    def publish(self, kind: str, event: Any) -> None:
        """Deliver *event* to every handler subscribed to *kind*.

        Producers normally guard this call behind a cached interest
        flag, but calling it with no subscribers is safe and cheap (one
        failed dict lookup).
        """
        handlers = self._subscribers.get(kind)
        if handlers is None:
            return
        profile = self._profile
        if profile is None:
            for handler in list(handlers):
                handler(event)
            return
        started = perf_counter()
        delivered = 0
        for handler in list(handlers):
            handler(event)
            delivered += 1
        profile.record_event(kind, delivered, perf_counter() - started)

    # -- self-profiling ---------------------------------------------------------------

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or with ``None`` remove) a delivery profiler.

        While installed, every :meth:`publish` that reaches at least one
        handler reports ``(kind, deliveries, wall seconds)`` through the
        profiler's ``record_event``.  The zero-subscriber path never
        touches the profiler, so the instrumented-but-idle cost stays
        one attribute test.
        """
        self._profile = profiler
