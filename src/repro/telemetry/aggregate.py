"""Streaming aggregators: metrics computed as events arrive.

Each aggregator subscribes to one or two event kinds on a
:class:`~repro.telemetry.bus.TelemetryBus` and maintains a running
summary, replacing the post-hoc walks over ``Trace`` lists in
``metrics/``:

* :class:`MissRatioAggregator` — per-task met/missed counts (the
  deadline-miss ratios of Tables 1-3) from ``DEADLINE_HIT``/``MISS``.
* :class:`LatencyAggregator` — job response-time tails (Table 4 /
  Figure 5) from ``JOB_LATENCY``, with either exact nearest-rank
  percentiles (byte-identical to :mod:`repro.metrics.percentiles`) or
  a bounded-memory deterministic reservoir.
* :class:`BandwidthAggregator` — granted-vs-consumed CPU bandwidth
  (Figure 3 / the usage monitor's over-claimer analysis) from
  ``CPU_ACCOUNT`` + ``VCPU_PARAMS``.

Every aggregator produces a JSON-able ``snapshot()`` and a classmethod
``merge(snapshots)`` such that merging per-shard snapshots in canonical
unit order reproduces the single-stream result — in exact mode the
reproduction is byte-identical (sorted multisets merge associatively),
which is what ``tools/check_determinism.py --streams`` gates on.
Reservoir mode trades that for O(capacity) memory: merges stay
deterministic (seeded LCG, no global RNG) but resample, so exact mode
is the default wherever the registry's byte-identity matters.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..metrics.percentiles import SortedSamples, merge_sorted_samples
from ..simcore.time import to_usec
from . import events
from .bus import TelemetryBus

# -- deterministic sampling ------------------------------------------------------------

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def _lcg_next(state: int) -> int:
    """One step of a 64-bit LCG (Knuth's MMIX constants)."""
    return (state * _LCG_MUL + _LCG_ADD) & _LCG_MASK


class OnlineStats:
    """Running count/sum/mean/min/max over a float stream, O(1) memory."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty stream")
        return self.total / self.count

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def merge(cls, snapshots: Sequence[dict]) -> "OnlineStats":
        merged = cls()
        for snap in snapshots:
            if snap["count"] == 0:
                continue
            merged.count += snap["count"]
            merged.total += snap["total"]
            if merged.min is None or snap["min"] < merged.min:
                merged.min = snap["min"]
            if merged.max is None or snap["max"] > merged.max:
                merged.max = snap["max"]
        return merged


class TailAggregator:
    """Streaming tail percentiles: exact by default, reservoir when bounded.

    ``mode="exact"`` keeps every sample (append + lazy sort — the same
    nearest-rank answers as :func:`repro.metrics.percentiles.percentile`,
    byte-identical).  ``mode="reservoir"`` keeps at most *capacity*
    samples via Algorithm R driven by a seeded LCG, so memory is bounded
    and results are reproducible run-to-run without touching the global
    RNG (which would perturb the simulation's seeded streams).
    """

    __slots__ = ("mode", "capacity", "seen", "_samples", "_sorted", "_state")

    def __init__(self, mode: str = "exact", capacity: int = 4096, seed: int = 1):
        if mode not in ("exact", "reservoir"):
            raise ValueError(f"unknown tail mode {mode!r}")
        if mode == "reservoir" and capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.mode = mode
        self.capacity = capacity
        self.seen = 0  # total samples offered, kept or not
        self._samples: List[float] = []
        self._sorted = True
        self._state = _lcg_next(seed & _LCG_MASK)

    def add(self, value: float) -> None:
        self.seen += 1
        if self.mode == "exact" or len(self._samples) < self.capacity:
            self._samples.append(value)
            self._sorted = False
            return
        # Algorithm R: the nth sample replaces a random slot with
        # probability capacity/n.
        self._state = _lcg_next(self._state)
        slot = (self._state >> 20) % self.seen
        if slot < self.capacity:
            self._samples[slot] = value
            self._sorted = False

    def _view(self) -> SortedSamples:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return SortedSamples(self._samples, presorted=True)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        return self._view().percentile(p)

    def tail_summary(self) -> Dict[float, float]:
        return self._view().tail_summary()

    def cdf_points(self):
        return self._view().cdf_points()

    def snapshot(self) -> dict:
        """JSON-able state; exact-mode samples are stored sorted."""
        return {
            "mode": self.mode,
            "capacity": self.capacity,
            "seen": self.seen,
            "samples": list(self._view().ordered),
        }

    @classmethod
    def merge(cls, snapshots: Sequence[dict], seed: int = 1) -> "TailAggregator":
        """Combine per-shard snapshots (in canonical shard order).

        Exact shards merge losslessly via :func:`merge_sorted_samples`;
        any reservoir shard forces a reservoir result, refilled by
        re-sampling the concatenated shard samples with a fresh seeded
        LCG (deterministic for a fixed snapshot order).
        """
        if not snapshots:
            return cls(mode="exact")
        if all(s["mode"] == "exact" for s in snapshots):
            merged = cls(mode="exact")
            merged._samples = merge_sorted_samples(
                [s["samples"] for s in snapshots]
            )
            merged._sorted = True
            merged.seen = sum(s["seen"] for s in snapshots)
            return merged
        capacity = min(
            s["capacity"] for s in snapshots if s["mode"] == "reservoir"
        )
        merged = cls(mode="reservoir", capacity=capacity, seed=seed)
        for snap in snapshots:
            for value in snap["samples"]:
                merged.add(value)
        merged.seen = sum(s["seen"] for s in snapshots)
        return merged


class MissRatioAggregator:
    """Per-task deadline met/missed counts, streamed from the bus."""

    __slots__ = ("per_task", "_cancel")

    def __init__(self) -> None:
        self.per_task: Dict[str, List[int]] = {}  # name -> [met, missed]
        self._cancel: Optional[Callable[[], None]] = None

    def attach(self, bus: TelemetryBus) -> "MissRatioAggregator":
        hit = bus.subscribe(events.DEADLINE_HIT, self._on_hit)
        miss = bus.subscribe(events.DEADLINE_MISS, self._on_miss)
        self._cancel = lambda: (hit(), miss())
        return self

    def detach(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _counts(self, task: str) -> List[int]:
        counts = self.per_task.get(task)
        if counts is None:
            counts = self.per_task[task] = [0, 0]
        return counts

    def _on_hit(self, event) -> None:
        self._counts(event.task)[0] += 1

    def _on_miss(self, event) -> None:
        self._counts(event.task)[1] += 1

    def decided(self, task: Optional[str] = None) -> int:
        if task is not None:
            met, missed = self.per_task.get(task, (0, 0))
            return met + missed
        return sum(m + x for m, x in self.per_task.values())

    def miss_ratio(self, task: Optional[str] = None) -> float:
        """missed/decided — the same definition as DeadlineStats.miss_ratio."""
        if task is not None:
            met, missed = self.per_task.get(task, (0, 0))
            decided = met + missed
            return missed / decided if decided else 0.0
        met = sum(m for m, _ in self.per_task.values())
        missed = sum(x for _, x in self.per_task.values())
        decided = met + missed
        return missed / decided if decided else 0.0

    def snapshot(self) -> dict:
        return {
            "per_task": {
                name: {"met": met, "missed": missed}
                for name, (met, missed) in sorted(self.per_task.items())
            }
        }

    @classmethod
    def merge(cls, snapshots: Sequence[dict]) -> "MissRatioAggregator":
        merged = cls()
        for snap in snapshots:
            for name, counts in snap["per_task"].items():
                slot = merged._counts(name)
                slot[0] += counts["met"]
                slot[1] += counts["missed"]
        return merged


class LatencyAggregator:
    """Job response-time stats in µs, streamed from ``JOB_LATENCY``."""

    __slots__ = ("stats", "tail", "_cancel")

    def __init__(self, mode: str = "exact", capacity: int = 4096, seed: int = 1):
        self.stats = OnlineStats()
        self.tail = TailAggregator(mode=mode, capacity=capacity, seed=seed)
        self._cancel: Optional[Callable[[], None]] = None

    def attach(self, bus: TelemetryBus) -> "LatencyAggregator":
        self._cancel = bus.subscribe(events.JOB_LATENCY, self._on_latency)
        return self

    def detach(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _on_latency(self, event) -> None:
        usec = to_usec(event.latency_ns)
        self.stats.add(usec)
        self.tail.add(usec)

    def tail_usec(self) -> Dict[float, float]:
        return self.tail.tail_summary()

    def mean_usec(self) -> float:
        return self.stats.mean

    def snapshot(self) -> dict:
        return {"stats": self.stats.snapshot(), "tail": self.tail.snapshot()}

    @classmethod
    def merge(cls, snapshots: Sequence[dict], seed: int = 1) -> "LatencyAggregator":
        merged = cls()
        merged.stats = OnlineStats.merge([s["stats"] for s in snapshots])
        merged.tail = TailAggregator.merge(
            [s["tail"] for s in snapshots], seed=seed
        )
        return merged


class BandwidthAggregator:
    """Granted vs consumed CPU bandwidth per VCPU, streamed from the bus.

    Consumption accumulates the exact elapsed-ns charges the machine
    reports at every sync point (``CPU_ACCOUNT``); grants track each
    VCPU's latest (budget, period) reservation (``VCPU_PARAMS``) as an
    exact fraction, so over-claimer analysis needs no trace replay.
    """

    __slots__ = ("consumed_ns", "granted", "_cancel")

    def __init__(self) -> None:
        self.consumed_ns: Dict[str, int] = {}
        self.granted: Dict[str, Fraction] = {}
        self._cancel: Optional[Callable[[], None]] = None

    def attach(self, bus: TelemetryBus) -> "BandwidthAggregator":
        account = bus.subscribe(events.CPU_ACCOUNT, self._on_account)
        params = bus.subscribe(events.VCPU_PARAMS, self._on_params)
        self._cancel = lambda: (account(), params())
        return self

    def detach(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _on_account(self, event) -> None:
        self.consumed_ns[event.vcpu] = (
            self.consumed_ns.get(event.vcpu, 0) + event.elapsed
        )

    def _on_params(self, event) -> None:
        if event.period_ns > 0:
            self.granted[event.vcpu] = Fraction(event.budget_ns, event.period_ns)
        else:
            self.granted[event.vcpu] = Fraction(0)

    def consumed_bandwidth(self, vcpu: str, elapsed_ns: int) -> Fraction:
        """Consumed CPU share of *vcpu* over an *elapsed_ns* horizon."""
        if elapsed_ns <= 0:
            raise ValueError(f"elapsed_ns must be positive, got {elapsed_ns}")
        return Fraction(self.consumed_ns.get(vcpu, 0), elapsed_ns)

    def over_claimers(self, elapsed_ns: int, slack: float = 0.0) -> List[str]:
        """VCPUs whose granted share exceeds consumption by > *slack*."""
        out = []
        for vcpu in sorted(self.granted):
            margin = float(self.granted[vcpu]) - float(
                self.consumed_bandwidth(vcpu, elapsed_ns)
            )
            if margin > slack:
                out.append(vcpu)
        return out

    def snapshot(self) -> dict:
        return {
            "consumed_ns": dict(sorted(self.consumed_ns.items())),
            "granted": {
                name: [bw.numerator, bw.denominator]
                for name, bw in sorted(self.granted.items())
            },
        }

    @classmethod
    def merge(cls, snapshots: Sequence[dict]) -> "BandwidthAggregator":
        merged = cls()
        for snap in snapshots:
            for name, ns in snap["consumed_ns"].items():
                merged.consumed_ns[name] = merged.consumed_ns.get(name, 0) + ns
            for name, (num, den) in snap["granted"].items():
                # Later shards win — shard order is canonical, so this
                # is deterministic; for disjoint shards it's a union.
                merged.granted[name] = Fraction(num, den)
        return merged


class StandardTelemetry:
    """The three headline streaming metrics bundled on one bus.

    Attach to a system's bus before the run; after it, ``snapshot()``
    is a JSON-able record of deadline-miss ratios, latency tails, and
    granted-vs-consumed bandwidth — with no trace retained in memory.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        tail_mode: str = "exact",
        capacity: int = 4096,
        seed: int = 1,
    ):
        self.misses = MissRatioAggregator().attach(bus)
        self.latency = LatencyAggregator(
            mode=tail_mode, capacity=capacity, seed=seed
        ).attach(bus)
        self.bandwidth = BandwidthAggregator().attach(bus)

    def detach(self) -> None:
        self.misses.detach()
        self.latency.detach()
        self.bandwidth.detach()

    def snapshot(self) -> dict:
        return {
            "misses": self.misses.snapshot(),
            "latency": self.latency.snapshot(),
            "bandwidth": self.bandwidth.snapshot(),
        }

    @staticmethod
    def merge_snapshots(snapshots: Sequence[dict], seed: int = 1) -> dict:
        """Merge whole-bundle snapshots, in canonical shard order."""
        misses = MissRatioAggregator.merge([s["misses"] for s in snapshots])
        latency = LatencyAggregator.merge(
            [s["latency"] for s in snapshots], seed=seed
        )
        bandwidth = BandwidthAggregator.merge(
            [s["bandwidth"] for s in snapshots]
        )
        return {
            "misses": misses.snapshot(),
            "latency": latency.snapshot(),
            "bandwidth": bandwidth.snapshot(),
        }
