"""Unified telemetry: typed events, the bus, streaming aggregators,
causal spans, miss blame, the simulator self-profiler, and the flight
recorder (durable traces + divergence diff; what-if replay lives in
:mod:`repro.telemetry.replay`).

The package is intentionally leaf-like: :mod:`repro.simcore` and
:mod:`repro.host` import it (every :class:`~repro.host.machine.Machine`
owns a :class:`TelemetryBus`), so nothing here may import scheduler or
experiment modules.  The probe and blame work units live in
:mod:`repro.telemetry.probe` / :mod:`repro.telemetry.blame` — their
plan halves pull in the scenario and runner layers lazily for exactly
that reason (the blame *analysis* classes re-exported here are pure).
"""

from . import events
from .aggregate import (
    BandwidthAggregator,
    LatencyAggregator,
    MissRatioAggregator,
    OnlineStats,
    StandardTelemetry,
    TailAggregator,
)
from .blame import CAUSES, BlameReport, analyze_spans, attribute_miss
from .bus import TelemetryBus
from .diff import TraceDiff, diff_traces
from .profile import SimProfiler, profile_scope
from .record import TraceReader, TraceRecorder, merge_traces
from .spans import Span, SpanBuilder

__all__ = [
    "events",
    "TelemetryBus",
    "OnlineStats",
    "TailAggregator",
    "MissRatioAggregator",
    "LatencyAggregator",
    "BandwidthAggregator",
    "StandardTelemetry",
    "Span",
    "SpanBuilder",
    "TraceRecorder",
    "TraceReader",
    "TraceDiff",
    "diff_traces",
    "merge_traces",
    "BlameReport",
    "CAUSES",
    "analyze_spans",
    "attribute_miss",
    "SimProfiler",
    "profile_scope",
]
