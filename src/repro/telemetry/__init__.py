"""Unified telemetry: typed events, the bus, and streaming aggregators.

The package is intentionally leaf-like: :mod:`repro.simcore` and
:mod:`repro.host` import it (every :class:`~repro.host.machine.Machine`
owns a :class:`TelemetryBus`), so nothing here may import scheduler or
experiment modules.  The probe work units live in
:mod:`repro.telemetry.probe`, imported lazily by the runner for exactly
that reason.
"""

from . import events
from .aggregate import (
    BandwidthAggregator,
    LatencyAggregator,
    MissRatioAggregator,
    OnlineStats,
    StandardTelemetry,
    TailAggregator,
)
from .bus import TelemetryBus

__all__ = [
    "events",
    "TelemetryBus",
    "OnlineStats",
    "TailAggregator",
    "MissRatioAggregator",
    "LatencyAggregator",
    "BandwidthAggregator",
    "StandardTelemetry",
]
