"""Simulator self-profiler: where does the *simulator* spend time?

The observability stack so far answers questions about the simulated
system; this module answers the meta-question.  A :class:`SimProfiler`
installs into the two execution loops that together account for nearly
all simulator wall time:

- the :class:`~repro.telemetry.bus.TelemetryBus` reports, per event
  kind, how many handler deliveries ran and how long they took — the
  cost of the observability itself;
- the :class:`~repro.simcore.engine.Engine` reports, per *phase* (the
  event-name prefix before the first ``":"``, e.g. ``replenish``,
  ``complete``, ``fault``), how many events executed and how much wall
  time each phase consumed.

Both hooks are first-class slots on their (slotted) hosts and cost one
attribute test when no profiler is installed; ``tools/check_perf.py``
gates that disabled cost alongside the telemetry fast path.

Wall-clock numbers are inherently nondeterministic, so profiler output
is never part of a determinism-gated snapshot; counts are exact and
reproducible, times are advisory.
"""

from __future__ import annotations

from typing import Dict

#: Phase bucket for events scheduled without a name.
ANONYMOUS_PHASE = "(unnamed)"


class SimProfiler:
    """Per-event-kind bus cost and per-phase engine cost, accumulated."""

    def __init__(self) -> None:
        #: kind -> [publishes, handler deliveries, wall seconds]
        self.event_costs: Dict[str, list] = {}
        #: phase -> [events executed, wall seconds]
        self.phase_costs: Dict[str, list] = {}
        self._engine = None
        self._bus = None

    # -- wiring -----------------------------------------------------------------

    def install(self, engine=None, bus=None) -> "SimProfiler":
        """Attach to an engine and/or a telemetry bus; returns self."""
        if engine is not None:
            engine.set_profiler(self)
            self._engine = engine
        if bus is not None:
            bus.set_profiler(self)
            self._bus = bus
        return self

    def uninstall(self) -> None:
        """Detach from whatever this profiler was installed on."""
        if self._engine is not None:
            self._engine.set_profiler(None)
            self._engine = None
        if self._bus is not None:
            self._bus.set_profiler(None)
            self._bus = None

    # -- recording hooks (called by the bus / the engine) -----------------------

    def record_event(self, kind: str, deliveries: int, seconds: float) -> None:
        cell = self.event_costs.get(kind)
        if cell is None:
            cell = self.event_costs[kind] = [0, 0, 0.0]
        cell[0] += 1
        cell[1] += deliveries
        cell[2] += seconds

    def record_phase(self, name: str, seconds: float) -> None:
        phase = name.partition(":")[0] if name else ANONYMOUS_PHASE
        cell = self.phase_costs.get(phase)
        if cell is None:
            cell = self.phase_costs[phase] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds

    # -- output -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able report: counts are exact, wall times advisory."""
        return {
            "events": {
                kind: {
                    "publishes": cell[0],
                    "deliveries": cell[1],
                    "wall_s": cell[2],
                }
                for kind, cell in sorted(self.event_costs.items())
            },
            "phases": {
                phase: {"events": cell[0], "wall_s": cell[1]}
                for phase, cell in sorted(self.phase_costs.items())
            },
        }

    def summary(self, top: int = 8) -> str:
        """Terminal-friendly digest: the costliest phases and kinds."""
        lines = ["self-profile (simulator wall time):"]
        phases = sorted(
            self.phase_costs.items(), key=lambda kv: -kv[1][1]
        )[:top]
        for phase, (count, seconds) in phases:
            lines.append(
                f"  phase {phase:<16} {count:>8} events  {seconds * 1e3:8.2f} ms"
            )
        kinds = sorted(
            self.event_costs.items(), key=lambda kv: -kv[1][2]
        )[:top]
        for kind, (publishes, deliveries, seconds) in kinds:
            lines.append(
                f"  bus   {kind:<16} {publishes:>8} pubs "
                f"({deliveries} deliveries)  {seconds * 1e3:8.2f} ms"
            )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


def profile_scope(engine=None, bus=None) -> "_ProfileScope":
    """Context manager: install a fresh profiler, uninstall on exit.

    >>> with profile_scope(engine=system.engine, bus=machine.bus) as prof:
    ...     system.run(duration)
    >>> prof.snapshot()
    """
    return _ProfileScope(engine, bus)


class _ProfileScope:
    def __init__(self, engine, bus) -> None:
        self.profiler = SimProfiler()
        self._engine = engine
        self._bus = bus

    def __enter__(self) -> SimProfiler:
        return self.profiler.install(engine=self._engine, bus=self._bus)

    def __exit__(self, *exc_info) -> None:
        self.profiler.uninstall()
