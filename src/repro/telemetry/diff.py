"""Structural divergence diff of two recorded traces.

Given two traces of the "same" stimulus (a run and its replay, or one
recorded load replayed under two schedulers), report *where* they first
diverge — the earliest index at which the event streams disagree, with
a window of shared context before it — plus per-kind event-count deltas
and per-task released/missed/latency deltas.  The diff is structural
(event tuples compared field-for-field), so it pinpoints the exact
scheduling decision where behavior forked, not just that end-of-run
metrics differ.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import events as T
from .record import TraceReader


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces`."""

    identical: bool
    hash_a: str
    hash_b: str
    events_a: int
    events_b: int
    #: index of the first differing event; None when identical
    divergence_index: Optional[int]
    #: the differing events themselves (None when one stream ended)
    event_a: Optional[Tuple[str, tuple]]
    event_b: Optional[Tuple[str, tuple]]
    #: shared events immediately before the divergence, oldest first
    context: List[Tuple[str, tuple]] = field(default_factory=list)
    #: per-kind count rows {kind, a, b, delta}, only kinds that differ
    count_deltas: List[Dict[str, object]] = field(default_factory=list)
    #: per-task rows {task, released_a/b, missed_a/b, mean_latency_ms_a/b}
    task_deltas: List[Dict[str, object]] = field(default_factory=list)

    def summary(self) -> str:
        from ..experiments.common import format_table

        if self.identical:
            return (
                f"traces identical: {self.events_a} events, "
                f"hash {self.hash_a[:16]}"
            )
        lines = [
            f"traces diverge at event #{self.divergence_index} "
            f"({self.events_a} vs {self.events_b} events)",
        ]
        for kind, event in self.context:
            lines.append(f"    = {kind}: {tuple(event)}")
        lines.append(f"    A {self._describe(self.event_a)}")
        lines.append(f"    B {self._describe(self.event_b)}")
        if self.count_deltas:
            lines.append("")
            lines.append(format_table(self.count_deltas, title="Event-count deltas"))
        if self.task_deltas:
            lines.append("")
            lines.append(format_table(self.task_deltas, title="Per-task deltas"))
        return "\n".join(lines)

    @staticmethod
    def _describe(entry: Optional[Tuple[str, tuple]]) -> str:
        if entry is None:
            return "<end of trace>"
        kind, event = entry
        return f"{kind}: {tuple(event)}"


def _task_stats(reader: TraceReader) -> Dict[str, List]:
    """task -> [released, missed, latency_sum_ns, latency_count]."""
    stats: Dict[str, List] = {}
    kinds = (T.JOB_RELEASE, T.DEADLINE_MISS, T.JOB_LATENCY)
    for kind, event in reader.events(kinds=kinds):
        slot = stats.setdefault(event.task, [0, 0, 0, 0])
        if kind == T.JOB_RELEASE:
            slot[0] += 1
        elif kind == T.DEADLINE_MISS:
            slot[1] += 1
        else:
            slot[2] += event.latency_ns
            slot[3] += 1
    return stats


def diff_traces(a, b, context: int = 3) -> TraceDiff:
    """Diff two traces (paths, bytes or readers); see :class:`TraceDiff`."""
    ra = a if isinstance(a, TraceReader) else TraceReader(a)
    rb = b if isinstance(b, TraceReader) else TraceReader(b)

    if ra.trace_hash == rb.trace_hash:
        return TraceDiff(
            identical=True,
            hash_a=ra.trace_hash,
            hash_b=rb.trace_hash,
            events_a=ra.event_count,
            events_b=rb.event_count,
            divergence_index=None,
            event_a=None,
            event_b=None,
        )

    window: deque = deque(maxlen=max(context, 0))
    index = 0
    event_a: Optional[Tuple[str, tuple]] = None
    event_b: Optional[Tuple[str, tuple]] = None
    it_a, it_b = ra.events(), rb.events()
    while True:
        ea = next(it_a, None)
        eb = next(it_b, None)
        if ea is None and eb is None:
            # same stream, different header/meta bytes — treat as the
            # divergence being "nowhere in the body"
            index = ra.event_count
            break
        if ea != eb:
            event_a, event_b = ea, eb
            break
        window.append(ea)
        index += 1

    count_deltas = []
    for kind in sorted(set(ra.counts) | set(rb.counts)):
        ca, cb = ra.counts.get(kind, 0), rb.counts.get(kind, 0)
        if ca != cb:
            count_deltas.append({"kind": kind, "a": ca, "b": cb, "delta": cb - ca})

    stats_a, stats_b = _task_stats(ra), _task_stats(rb)
    task_deltas = []
    for task in sorted(set(stats_a) | set(stats_b)):
        sa = stats_a.get(task, [0, 0, 0, 0])
        sb = stats_b.get(task, [0, 0, 0, 0])
        if sa == sb:
            continue
        task_deltas.append(
            {
                "task": task,
                "released_a": sa[0],
                "released_b": sb[0],
                "missed_a": sa[1],
                "missed_b": sb[1],
                "miss_delta": sb[1] - sa[1],
                "mean_latency_ms_a": round(sa[2] / sa[3] / 1e6, 3) if sa[3] else 0.0,
                "mean_latency_ms_b": round(sb[2] / sb[3] / 1e6, 3) if sb[3] else 0.0,
            }
        )

    return TraceDiff(
        identical=False,
        hash_a=ra.trace_hash,
        hash_b=rb.trace_hash,
        events_a=ra.event_count,
        events_b=rb.event_count,
        divergence_index=index,
        event_a=event_a,
        event_b=event_b,
        context=list(window),
        count_deltas=count_deltas,
        task_deltas=task_deltas,
    )
