"""The sharded blame sweep — the *plan half* of miss-blame analysis.

:mod:`repro.telemetry.blame` is the pure analysis engine (span walk,
cause taxonomy, mergeable reports).  This module wraps it into runner
work units: one robustness cell per unit with spans attached, blamed in
the worker, merged in the parent.

Like :mod:`repro.telemetry.probe`, this module pulls in the
scenario/runner layers and is therefore deliberately **not** exported
from ``repro.telemetry.__init__`` — the core simulator imports the
telemetry package, and dragging the runner/experiment layers into that
import (even lazily) would make every experiment's cache salt depend on
every other experiment's code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .blame import BlameReport, analyze_spans
from .spans import SpanBuilder

#: Blame sweeps reuse the robustness suite's defaults.
BLAME_DURATION_NS = 2_000_000_000
BLAME_SEED = 11


def run_blame_shard(
    fault: str,
    scheduler: str,
    duration_ns: int = BLAME_DURATION_NS,
    seed: int = BLAME_SEED,
) -> dict:
    """Worker body: one robustness cell with spans attached and blamed."""
    from ..experiments.robustness import run_robustness_case

    holder: Dict[str, SpanBuilder] = {}

    def attach(system) -> None:
        holder["spans"] = SpanBuilder().attach(system.machine)

    row = run_robustness_case(
        fault,
        scheduler,
        duration_ns,
        seed,
        check_invariants=False,
        attach=attach,
    )
    builder = holder["spans"].finalize()
    report, misses = analyze_spans(builder)
    return {
        "fault": fault,
        "scheduler": scheduler,
        "released": row["released"],
        "missed": row["missed"],
        "blame": report.snapshot(),
        "misses": misses,
    }


class BlameSweep:
    """Assembled blame shards: per-cell rows plus a merged report."""

    def __init__(self, parts: Sequence[dict]) -> None:
        self.parts = list(parts)  # canonical unit order
        self.merged = BlameReport.merge([p["blame"] for p in self.parts])

    def rows(self) -> List[dict]:
        rows = []
        for part in self.parts:
            blame = part["blame"]
            top = "-"
            if blame["per_cause"]:
                top = max(
                    blame["per_cause"],
                    key=lambda c: (blame["per_cause"][c]["lost_ns"], c),
                )
            rows.append(
                {
                    "fault": part["fault"],
                    "scheduler": part["scheduler"],
                    "released": part["released"],
                    "missed": part["missed"],
                    "observed": blame["observed"],
                    "explained": blame["explained"],
                    "lost_ms": round(
                        sum(e["lost_ns"] for e in blame["per_cause"].values())
                        / 1e6,
                        3,
                    ),
                    "top_cause": top,
                }
            )
        return rows

    def summary(self) -> str:
        from ..report.ascii import render_blame_table

        lines = ["blame sweep (spans + root-cause attribution):"]
        for row in self.rows():
            lines.append(
                f"  {row['fault']:<10} {row['scheduler']:<7} "
                f"missed={row['missed']:>4} "
                f"explained={row['explained']}/{row['observed']} "
                f"lost={row['lost_ms']:.1f}ms top={row['top_cause']}"
            )
        lines.append("")
        lines.append(render_blame_table(self.merged.snapshot()))
        return "\n".join(lines)


def assemble_blame(parts: Sequence[dict]) -> BlameSweep:
    """Module-level assembly function (the executor requires one)."""
    return BlameSweep(parts)


def blame_plan(
    faults: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    duration_ns: int = BLAME_DURATION_NS,
    seed: int = BLAME_SEED,
):
    """A blame sweep as an :class:`ExperimentPlan` (not registry-backed)."""
    from ..experiments.robustness import (
        ROBUSTNESS_FAULTS,
        ROBUSTNESS_SCHEDULERS,
    )
    from ..runner.workunits import ExperimentPlan, WorkUnit

    faults = tuple(faults) if faults is not None else ROBUSTNESS_FAULTS
    schedulers = (
        tuple(schedulers) if schedulers is not None else ROBUSTNESS_SCHEDULERS
    )
    units = tuple(
        WorkUnit(
            experiment_id="blame_sweep",
            unit_id=f"blame_sweep/{fault}/{scheduler}",
            fn="repro.telemetry.blame_plan:run_blame_shard",
            kwargs=(
                ("fault", fault),
                ("scheduler", scheduler),
                ("duration_ns", duration_ns),
                ("seed", seed),
            ),
        )
        for fault in faults
        for scheduler in schedulers
    )
    return ExperimentPlan("blame_sweep", units, assemble_blame)
