"""Sharded trace recording — per-unit traces merged in canonical order.

Each work unit records one robustness cell with a flight recorder
attached and returns the raw trace bytes; the parent merges the shards
(in canonical unit order) into one sectioned trace whose bytes — and
hence canonical hash — are identical however the units were executed.
``tools/check_determinism.py --trace`` gates exactly that property:
serial, parallel and heap-queue executions must all merge to the same
hash.

Like :mod:`repro.telemetry.blame_plan`, this module pulls in the
experiment/runner layers and is deliberately **not** exported from
``repro.telemetry.__init__`` (import-closure / cache-salt hygiene).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .record import TraceReader, merge_traces

#: Trace sweeps reuse the robustness suite's smoke defaults.
TRACE_DURATION_NS = 1_000_000_000
TRACE_SEED = 11


def record_trace_shard(
    fault: str,
    scheduler: str,
    duration_ns: int = TRACE_DURATION_NS,
    seed: int = TRACE_SEED,
) -> dict:
    """Worker body: one robustness cell recorded to an in-memory trace."""
    from .replay import record_robustness_case

    recorded = record_robustness_case(fault, scheduler, duration_ns, seed)
    reader = recorded.reader()
    return {
        "fault": fault,
        "scheduler": scheduler,
        "row": recorded.rows[0],
        "events": reader.event_count,
        "hash": reader.trace_hash,
        "data": recorded.data,
    }


class TraceBundle:
    """Assembled trace shards plus their canonical merge."""

    def __init__(self, parts: Sequence[dict]) -> None:
        self.parts = list(parts)  # canonical unit order
        self.merged_data = merge_traces(
            [(f"{p['fault']}/{p['scheduler']}", p["data"]) for p in self.parts],
            header={"format": "merged", "parts": [p["hash"] for p in self.parts]},
        )
        self.merged_hash = TraceReader(self.merged_data).trace_hash

    def rows(self) -> List[dict]:
        return [
            dict(part["row"], events=part["events"], trace=part["hash"][:16])
            for part in self.parts
        ]

    def write(self, path: str) -> str:
        with open(path, "wb") as handle:
            handle.write(self.merged_data)
        return path

    def summary(self) -> str:
        from ..experiments.common import format_table

        table = format_table(self.rows(), title="Recorded robustness traces")
        total = sum(part["events"] for part in self.parts)
        return f"{table}\nmerged: {total} events, hash {self.merged_hash[:16]}"


def assemble_traces(parts: Sequence[dict]) -> TraceBundle:
    """Module-level assembly function (the executor requires one)."""
    return TraceBundle(parts)


def trace_plan(
    faults: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    duration_ns: int = TRACE_DURATION_NS,
    seed: int = TRACE_SEED,
):
    """A trace-recording sweep as an ExperimentPlan (not registry-backed)."""
    from ..experiments.robustness import (
        ROBUSTNESS_FAULTS,
        ROBUSTNESS_SCHEDULERS,
    )
    from ..runner.workunits import ExperimentPlan, WorkUnit

    faults = tuple(faults) if faults is not None else ROBUSTNESS_FAULTS
    schedulers = (
        tuple(schedulers) if schedulers is not None else ROBUSTNESS_SCHEDULERS
    )
    units = tuple(
        WorkUnit(
            experiment_id="trace_sweep",
            unit_id=f"trace_sweep/{fault}/{scheduler}",
            fn="repro.telemetry.trace_plan:record_trace_shard",
            kwargs=(
                ("fault", fault),
                ("scheduler", scheduler),
                ("duration_ns", duration_ns),
                ("seed", seed),
            ),
        )
        for fault in faults
        for scheduler in schedulers
    )
    return ExperimentPlan("trace_sweep", units, assemble_traces)
