"""Typed telemetry event taxonomy.

Every observable scheduler action has one event type here.  Events are
``NamedTuple`` subclasses: construction is one tuple allocation (the
producers sit on simulation hot paths), instances are immutable, and
``_asdict()`` gives a JSON-able record for exporters.

Each event class carries a ``kind`` string used as the routing key on
the :class:`~repro.telemetry.bus.TelemetryBus`.  Producers publish with
``bus.publish(KIND, Event(...))``; consumers subscribe per kind so an
unrelated subscriber never sees (or pays for) events it did not ask
for.

All times are engine nanoseconds (integers), matching the simulation
clock.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

# -- kind constants (bus routing keys) ------------------------------------------------

JOB_RELEASE = "job_release"
ENQUEUE = "enqueue"
CONTEXT_SWITCH = "context_switch"
MIGRATION = "migration"
SEGMENT_END = "segment_end"
DEADLINE_HIT = "deadline_hit"
DEADLINE_MISS = "deadline_miss"
JOB_LATENCY = "job_latency"
JOB_COMPLETE = "job_complete"
HYPERCALL = "hypercall"
BUDGET_REPLENISH = "budget_replenish"
BUDGET_DEPLETE = "budget_deplete"
ADMISSION_DECISION = "admission_decision"
FAULT_INJECTED = "fault_injected"
FAULT_RECOVERED = "fault_recovered"
CPU_ACCOUNT = "cpu_account"
VCPU_PARAMS = "vcpu_params"

#: Every routing key, in a stable order (useful for subscribe-to-all
#: consumers and for documentation).
ALL_KINDS: Tuple[str, ...] = (
    JOB_RELEASE,
    ENQUEUE,
    CONTEXT_SWITCH,
    MIGRATION,
    SEGMENT_END,
    DEADLINE_HIT,
    DEADLINE_MISS,
    JOB_LATENCY,
    JOB_COMPLETE,
    HYPERCALL,
    BUDGET_REPLENISH,
    BUDGET_DEPLETE,
    ADMISSION_DECISION,
    FAULT_INJECTED,
    FAULT_RECOVERED,
    CPU_ACCOUNT,
    VCPU_PARAMS,
)


# -- event records --------------------------------------------------------------------


class JobReleaseEvent(NamedTuple):
    """A deadline-bearing job was released by a workload driver.

    The first event of every per-job causal span: it carries the
    absolute release time and deadline so consumers never need to
    reconstruct them from the completion-side events.  Background jobs
    (no deadline) are not announced.
    """

    time: int
    vm: str
    vcpu: Optional[str]  # the task's pinned VCPU at release time
    task: str
    job: int
    release: int
    deadline: int


class EnqueueEvent(NamedTuple):
    """A released job entered a guest run queue and now awaits dispatch.

    ``scope`` distinguishes the pEDF per-VCPU local queue (``"local"``)
    from the gEDF VM-wide pool (``"global"``), where any sibling VCPU
    may claim the job.
    """

    time: int
    vm: str
    vcpu: Optional[str]
    task: str
    job: int
    scope: str  # "local" | "global"


class ContextSwitchEvent(NamedTuple):
    """A PCPU changed occupant (includes switches to/from idle)."""

    time: int
    pcpu: int
    vcpu: Optional[str]  # None when the PCPU goes idle
    migrated: bool


class MigrationEvent(NamedTuple):
    """A schedulable entity resumed on a different carrier than before.

    Host layer (``layer == "host"``): a VCPU moved between PCPUs —
    *source*/*target* are PCPU indexes.  Guest layer (``"guest"``): a
    job migrated between VCPUs under gEDF dispatch — *source*/*target*
    are VCPU indexes within the VM.
    """

    time: int
    entity: str  # VCPU name (host layer) or task name (guest layer)
    source: int
    target: int
    layer: str = "host"


class SegmentEndEvent(NamedTuple):
    """A contiguous run of one job on one PCPU ended (charge point)."""

    time: int
    pcpu: int
    vcpu: str
    task: str
    start: int
    end: int


class DeadlineHitEvent(NamedTuple):
    """A job completed at or before its absolute deadline."""

    time: int
    task: str
    job: int
    release: int
    deadline: int


class DeadlineMissEvent(NamedTuple):
    """A job completed after its absolute deadline."""

    time: int
    task: str
    job: int
    release: int
    deadline: int
    tardiness: int  # completion - deadline, ns (> 0)


class JobLatencyEvent(NamedTuple):
    """Response time (completion - release) of one finished job."""

    time: int
    task: str
    job: int
    latency_ns: int


class JobCompleteEvent(NamedTuple):
    """A job retired (mirrors the legacy ``"complete"`` trace event)."""

    time: int
    task: str
    job: int


class HypercallEvent(NamedTuple):
    """A guest->host scheduling hypercall and its outcome."""

    time: int
    vcpu: str
    op: str  # "increase" | "decrease" | "attach"
    outcome: str  # "granted" | "rejected" | "dropped"
    flag: int
    budget_ns: int
    period_ns: int


class BudgetReplenishEvent(NamedTuple):
    """A server/VCPU budget was refilled by the host scheduler."""

    time: int
    vcpu: str
    amount: int
    remaining: int


class BudgetDepleteEvent(NamedTuple):
    """A server/VCPU budget ran out (throttle point)."""

    time: int
    vcpu: str
    remaining: int  # post-depletion balance; negative under Credit


class AdmissionDecisionEvent(NamedTuple):
    """An admission-control verdict at either scheduling layer.

    ``vm``/``tenant`` carry the owning VM and tenant of the subject so
    credit scoring and ``repro explain`` can attribute sheds/commits
    without parsing names; both default empty for producers (guest
    emits, baseline CSAs) that have no owner bookkeeping.
    """

    time: int
    level: str  # "host" | "guest"
    op: str  # e.g. "commit", "release", "shed", "guest_register"
    subject: str  # vcpu/task name the decision is about
    granted: bool
    detail: str  # human-readable specifics ("0.25 of 4.0" etc.)
    vm: str = ""  # owning VM name, when known
    tenant: str = ""  # owning tenant, when a tenant resolver is bound


class FaultInjectedEvent(NamedTuple):
    """A fault fired (mirrors the legacy ``"fault"`` trace event)."""

    time: int
    fault: str  # e.g. "pcpu_fail", "vm_churn", "surge"
    detail: Tuple  # legacy detail tuple, minus the kind itself


class FaultRecoveredEvent(NamedTuple):
    """A previously injected fault ended / was repaired."""

    time: int
    fault: str
    detail: Tuple


class CpuAccountEvent(NamedTuple):
    """Exact CPU time charged to a VCPU at a sync point."""

    time: int
    vcpu: str
    vcpu_uid: int
    pcpu: int
    elapsed: int


class VcpuParamsEvent(NamedTuple):
    """A VCPU's (budget, period) reservation changed."""

    time: int
    vcpu: str
    vcpu_uid: int
    budget_ns: int
    period_ns: int
