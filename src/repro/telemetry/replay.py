"""What-if replay — drive a recorded trace against any scheduler.

A recorded trace fixes the *stimulus* of a run: every job release of
the base workload, and every root fault injection, with exact times.
Replay rebuilds the same VMs and tasks under a (possibly different)
scheduler, re-issues the recorded releases through the engine's normal
release path, re-installs the recorded fault roots as an
:class:`~repro.faults.timeline.At` timeline, and runs.  The same
scheduler reproduces the original run event-for-event (the round-trip
tests compare metric rows and canonical trace hashes byte for byte); a
different scheduler answers "what would RT-Xen / Credit have done with
this exact load?" — the divergence is then pinpointed with
:mod:`repro.telemetry.diff`.

Exactness argument (same scheduler): the engine executes events in
(time, priority, insertion) order.  Replay release drivers mirror the
live drivers' insertion discipline — release the job, then schedule the
next recorded release at the same priority — and are started in
recorded first-release order, so any same-instant release collisions
tie-break identically.  Fault children (churn shutdowns, surge reverts,
jitter ends) are *not* replayed from the trace: the re-applied roots
regenerate them, which keeps scheduler-dependent outcomes (admission
rejections) free to differ under what-if schedulers.  Known limit: a
same-instant collision between a fault child and a later fault root can
order differently than the original; no shipped timeline produces one.

Like :mod:`repro.telemetry.blame_plan`, this module deliberately lives
outside ``repro.telemetry``'s public namespace and imports the
experiment layers lazily, so the telemetry package's import closure (and
every cached unit salt hanging off it) stays small.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import events as T
from .record import TraceReader, TraceRecorder

#: Registry scheduler labels -> scenario-spec system kinds (both
#: spellings are accepted anywhere a scheduler override is taken).
SCHEDULER_SYSTEM_KINDS = {"RTVirt": "rtvirt", "RT-Xen": "rtxen", "Credit": "credit"}
_KIND_SCHEDULERS = {kind: label for label, kind in SCHEDULER_SYSTEM_KINDS.items()}


def canonical_scheduler(name: str) -> str:
    """Normalize a scheduler override to the registry label."""
    if name in SCHEDULER_SYSTEM_KINDS:
        return name
    if name in _KIND_SCHEDULERS:
        return _KIND_SCHEDULERS[name]
    raise ValueError(f"unknown scheduler {name!r}")


@dataclass
class RecordedRun:
    """Outcome of recording one run."""

    rows: List[Dict[str, object]]
    path: Optional[str] = None
    data: Optional[bytes] = field(default=None, repr=False)

    def reader(self) -> TraceReader:
        return TraceReader(self.path if self.path else self.data)


@dataclass
class ReplayResult:
    """Outcome of replaying a trace."""

    header: Dict[str, Any]
    scheduler: str
    rows: List[Dict[str, object]]
    recorded_rows: List[Dict[str, object]]
    trace_path: Optional[str] = None
    trace_data: Optional[bytes] = field(default=None, repr=False)
    system: Any = field(default=None, repr=False)

    def rows_match(self) -> bool:
        """Replayed metric rows byte-identical to the recorded ones."""
        canon = lambda rows: json.dumps(rows, sort_keys=True)  # noqa: E731
        return canon(self.rows) == canon(self.recorded_rows)

    def reader(self) -> Optional[TraceReader]:
        if self.trace_path:
            return TraceReader(self.trace_path)
        if self.trace_data is not None:
            return TraceReader(self.trace_data)
        return None


# -- recorded release timelines -------------------------------------------------------


def _release_schedule(
    reader: TraceReader, base_tasks: Sequence[str]
) -> Tuple[List[str], Dict[str, List[int]]]:
    """Per-base-task absolute release instants, in first-release order."""
    base = set(base_tasks)
    order: List[str] = []
    times: Dict[str, List[int]] = {}
    for _kind, event in reader.events(kinds=(T.JOB_RELEASE,)):
        if event.task not in base:
            continue  # churn-born tasks are re-created by fault replay
        slots = times.get(event.task)
        if slots is None:
            slots = times[event.task] = []
            order.append(event.task)
        slots.append(event.time)
    return order, times


class _EngineReplay:
    """Re-issue one task's recorded releases, chained like PeriodicDriver."""

    def __init__(self, engine, vm, task, times: List[int]):
        self.engine = engine
        self.vm = vm
        self.task = task
        self.times = times
        self._idx = 0

    def start(self) -> "_EngineReplay":
        if self.times:
            self._schedule(self.times[0])
        return self

    def _schedule(self, when: int) -> None:
        from ..simcore.events import PRIORITY_RELEASE

        self.engine.at(
            when,
            self._fire,
            priority=PRIORITY_RELEASE,
            name=f"release:{self.task.name}",
        )

    def _fire(self) -> None:
        # mirror PeriodicDriver._release: release first, then re-arm
        self.vm.release_job(self.task, now=self.engine.now)
        self._idx += 1
        if self._idx < len(self.times):
            self._schedule(self.times[self._idx])


class _MuxReplay:
    """Recorded sporadic arrivals re-issued through the ArrivalMux."""

    def __init__(self, mux, vm, task, times: List[int]):
        self.mux = mux
        self.vm = vm
        self.task = task
        self.times = times
        self._idx = 0

    def start(self) -> "_MuxReplay":
        if self.times:
            self.mux.at(self.times[0], self._fire)
        return self

    def _fire(self) -> None:
        # mirror SporadicDriver._arrive: release first, then re-arm
        self.vm.release_job(self.task, now=self.mux.engine.now)
        self._idx += 1
        if self._idx < len(self.times):
            self.mux.at(self.times[self._idx], self._fire)


def _install_releases(
    reader: TraceReader,
    base_tasks: Sequence[str],
    task_map: Dict[str, Tuple[Any, Any]],
    engine,
    mux=None,
    sporadic: Sequence[str] = (),
) -> int:
    """Start a replay driver per recorded base task; returns task count."""
    order, times = _release_schedule(reader, base_tasks)
    sporadic_set = set(sporadic)
    for name in order:
        if name not in task_map:
            raise ValueError(f"trace releases unknown task {name!r}")
        vm, task = task_map[name]
        if name in sporadic_set and mux is not None:
            _MuxReplay(mux, vm, task, times[name]).start()
        else:
            _EngineReplay(engine, vm, task, times[name]).start()
    return len(order)


# -- recorded fault timelines ---------------------------------------------------------


def _fault_directives(reader: TraceReader) -> List[Any]:
    """Root fault injections of the trace as an ``At`` timeline.

    Children (churn shutdowns, surge reverts, jitter/drop ends) are
    skipped: the re-applied roots schedule their own.
    """
    from ..faults import (
        At,
        ClockJitter,
        HypercallDelay,
        HypercallDrop,
        PcpuFail,
        PcpuRecover,
        VmChurn,
        WorkloadSurge,
    )

    directives: List[Any] = []
    for kind, event in reader.events(kinds=(T.FAULT_INJECTED, T.FAULT_RECOVERED)):
        fault, detail, when = event.fault, event.detail, event.time
        if kind == T.FAULT_RECOVERED:
            if fault == "pcpu_recover":
                directives.append(At(when, PcpuRecover(detail[0])))
            # every other recovery is a child of an earlier root
            continue
        if fault == "pcpu_fail":
            directives.append(At(when, PcpuFail(detail[0])))
        elif fault == "vm_churn":
            # (name, "boot", slice, period, lifetime) or
            # (name, "rejected", reason, slice, period, lifetime);
            # admission is scheduler-dependent, so a recorded rejection
            # is still re-attempted under the what-if scheduler.
            offset = 2 if detail[1] == "boot" else 3
            prefix = detail[0].rstrip("0123456789") or "churn"
            directives.append(
                At(
                    when,
                    VmChurn(
                        prefix=prefix,
                        slice_ns=detail[offset],
                        period_ns=detail[offset + 1],
                        lifetime_ns=detail[offset + 2],
                    ),
                )
            )
        elif fault == "workload_surge":
            # (vm, applied, rejected, num, den, dur) or
            # (vm, "no-such-vm", num, den, dur)
            offset = 2 if detail[1] == "no-such-vm" else 3
            directives.append(
                At(
                    when,
                    WorkloadSurge(
                        detail[0],
                        num=detail[offset],
                        den=detail[offset + 1],
                        duration_ns=detail[offset + 2],
                    ),
                )
            )
        elif fault == "hypercall_delay":
            directives.append(
                At(when, HypercallDelay(delay_ns=detail[0], duration_ns=detail[1]))
            )
        elif fault == "hypercall_drop":
            directives.append(At(when, HypercallDrop(duration_ns=detail[0])))
        elif fault == "clock_jitter":
            directives.append(
                At(when, ClockJitter(max_ns=detail[0], duration_ns=detail[1]))
            )
        else:
            raise ValueError(f"trace contains unreplayable fault {fault!r}")
    return directives


# -- recording entry points -----------------------------------------------------------


def _base_task_names(system) -> List[str]:
    return [task.name for vm in system.vms for task in vm.rt_tasks]


def record_robustness_case(
    fault: str,
    scheduler: str,
    duration_ns: int,
    seed: int,
    path: Optional[str] = None,
    check_invariants: bool = True,
) -> RecordedRun:
    """Run one robustness cell with a flight recorder attached."""
    from ..experiments.robustness import run_robustness_case

    holder: Dict[str, TraceRecorder] = {}

    def hook(system) -> None:
        header = {
            "format": "robustness",
            "fault": fault,
            "scheduler": scheduler,
            "duration_ns": duration_ns,
            "seed": seed,
            "check_invariants": check_invariants,
            "base_tasks": _base_task_names(system),
            "migration_ns": system.machine.costs.migration_ns,
        }
        holder["recorder"] = TraceRecorder(path, header).attach(system.machine.bus)

    row = run_robustness_case(
        fault,
        scheduler,
        duration_ns,
        seed,
        check_invariants=check_invariants,
        attach=hook,
    )
    data = holder["recorder"].close(meta={"rows": [row]})
    return RecordedRun(rows=[row], path=path, data=data)


def record_scenario(
    spec: Dict[str, Any], path: Optional[str] = None, name: str = "scenario"
) -> RecordedRun:
    """Run a declarative scenario with a flight recorder attached."""
    from ..scenario import run_scenario
    from ..simcore.time import sec

    holder: Dict[str, TraceRecorder] = {}
    system_kind = spec.get("system", {}).get("type", "rtvirt")

    def hook(system) -> None:
        header = {
            "format": "scenario",
            "name": name,
            "spec": spec,
            "scheduler": _KIND_SCHEDULERS[system_kind],
            "duration_ns": sec(spec.get("duration_s", 10)),
            "seed": int(spec.get("seed", 0)),
            "migration_ns": system.machine.costs.migration_ns,
        }
        holder["recorder"] = TraceRecorder(path, header).attach(system.machine.bus)

    result = run_scenario(spec, name=name, attach=hook)
    rows = result.rows()
    data = holder["recorder"].close(meta={"rows": rows})
    return RecordedRun(rows=rows, path=path, data=data)


def record_scenario_file(path_in: str, path_out: Optional[str] = None) -> RecordedRun:
    with open(path_in) as handle:
        spec = json.load(handle)
    return record_scenario(spec, path=path_out, name=path_in)


# -- replay ---------------------------------------------------------------------------


def replay_trace(
    source,
    scheduler: Optional[str] = None,
    record_path: Optional[str] = None,
    record: bool = False,
    attach=None,
    check_invariants: Optional[bool] = None,
) -> ReplayResult:
    """Replay *source* (path, bytes or reader), optionally re-recording.

    *scheduler* overrides the recorded scheduler for what-if replay;
    *attach* is called with the rebuilt system before the run (the hook
    for policy what-ifs, e.g. attaching a
    :class:`~repro.control.controller.FeedbackController`).
    """
    reader = source if isinstance(source, TraceReader) else TraceReader(source)
    header = reader.header
    fmt = header.get("format")
    if fmt == "robustness":
        return _replay_robustness(
            reader, scheduler, record_path, record, attach, check_invariants
        )
    if fmt == "scenario":
        return _replay_scenario(reader, scheduler, record_path, record, attach)
    raise ValueError(f"trace is not replayable (format={fmt!r})")


def _new_recorder(
    header: Dict[str, Any],
    scheduler: str,
    reader: TraceReader,
    record_path: Optional[str],
    record: bool,
) -> Optional[TraceRecorder]:
    if not record_path and not record:
        return None
    replay_header = dict(header)
    replay_header["scheduler"] = scheduler
    replay_header["replay_of"] = reader.trace_hash
    return TraceRecorder(record_path, replay_header)


def _replay_robustness(
    reader, scheduler, record_path, record, attach, check_invariants
) -> ReplayResult:
    from ..experiments.robustness import build_system, case_row
    from ..faults import InvariantChecker, Scenario
    from ..simcore.rng import RandomStreams

    header = reader.header
    sched = canonical_scheduler(scheduler) if scheduler else header["scheduler"]
    check = (
        header.get("check_invariants", True)
        if check_invariants is None
        else check_invariants
    )
    system = build_system(sched, start_drivers=False)
    checker = InvariantChecker(system).attach() if check else None
    recorder = _new_recorder(header, sched, reader, record_path, record)
    if recorder is not None:
        recorder.attach(system.machine.bus)
    if attach is not None:
        attach(system)
    task_map = {
        task.name: (vm, task) for vm in system.vms for task in vm.rt_tasks
    }
    _install_releases(
        reader, header["base_tasks"], task_map, system.engine
    )
    ctx = Scenario(_fault_directives(reader)).install(
        system, RandomStreams(header["seed"])
    )
    system.run(header["duration_ns"])
    row = case_row(header["fault"], sched, system, ctx, checker)
    trace_data = recorder.close(meta={"rows": [row]}) if recorder else None
    return ReplayResult(
        header=header,
        scheduler=sched,
        rows=[row],
        recorded_rows=reader.meta.get("rows", []),
        trace_path=record_path,
        trace_data=trace_data,
        system=system,
    )


def _replay_scenario(reader, scheduler, record_path, record, attach) -> ReplayResult:
    from ..guest.task import TaskKind
    from ..metrics.deadlines import collect_miss_report
    from ..scenario import ScenarioResult, build_scenario_system

    header = reader.header
    spec = copy.deepcopy(header["spec"])
    if scheduler:
        sched = canonical_scheduler(scheduler)
        spec.setdefault("system", {})["type"] = SCHEDULER_SYSTEM_KINDS[sched]
    else:
        sched = header["scheduler"]
    recorder = _new_recorder(header, sched, reader, record_path, record)

    def hook(system) -> None:
        if recorder is not None:
            recorder.attach(system.machine.bus)
        if attach is not None:
            attach(system)

    name = header.get("name", "scenario")
    build = build_scenario_system(
        spec, name=name, attach=hook, start_drivers=False
    )
    sporadic = [
        task_name
        for task_name, (_vm, task) in build.task_vms.items()
        if task.kind is TaskKind.SPORADIC
    ]
    _install_releases(
        reader,
        list(build.task_vms),
        build.task_vms,
        build.system.engine,
        mux=build.mux,
        sporadic=sporadic,
    )
    from ..faults import Scenario as FaultScenario

    directives = _fault_directives(reader)
    if directives:
        FaultScenario(directives).install(build.system, build.streams)
    build.system.run(build.duration_ns)
    build.system.finalize()
    result = ScenarioResult(
        name=name,
        duration_ns=build.duration_ns,
        report=collect_miss_report(build.all_tasks),
        system=build.system,
    )
    rows = result.rows()
    trace_data = recorder.close(meta={"rows": rows}) if recorder else None
    return ReplayResult(
        header=header,
        scheduler=sched,
        rows=rows,
        recorded_rows=reader.meta.get("rows", []),
        trace_path=record_path,
        trace_data=trace_data,
        system=build.system,
    )


# -- offline span assembly ------------------------------------------------------------


def spans_from_trace(reader: TraceReader):
    """Pump a recorded trace through a private bus into a SpanBuilder.

    Returns the finalized builder — the offline backend of
    ``repro explain <trace>``.
    """
    from .bus import TelemetryBus
    from .spans import SpanBuilder

    bus = TelemetryBus()
    builder = SpanBuilder(migration_ns=reader.header.get("migration_ns"))
    builder.attach_bus(bus)
    publish = bus.publish
    last_time = 0
    for kind, event in reader.events():
        publish(kind, event)
        last_time = event.time
    end = reader.header.get("duration_ns", last_time)
    builder.finalize(end_time=end)
    return builder
