"""Cross-scheduler telemetry probe: sharded runs with mergeable streams.

The probe runs one small, fixed scenario per (system, seed) cell —
RTVirt, RT-Xen and Credit, a couple of seeds each — with
:class:`~repro.telemetry.aggregate.StandardTelemetry` attached to the
machine's bus, and returns each cell's aggregate *snapshot* instead of
a trace.  The cells are packaged as a
:class:`~repro.runner.workunits.ExperimentPlan`, so the generic
executor can run them serially or across a process pool; per-system
results are produced by **merging the seed shards' snapshots in
canonical unit order**, which in exact tail mode is byte-identical
however the units were scheduled.  ``tools/check_determinism.py
--streams`` gates on precisely that property.

The probe is deliberately *not* registered in the experiment registry:
it is a telemetry-infrastructure check, not a paper experiment, and
keeping it out leaves the registry's recorded wall-time benchmarks
undisturbed.

This module is imported lazily (by the runner and the tools), never
from ``repro.telemetry.__init__`` — it pulls in the scenario and
runner layers, which themselves import the telemetry package.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .aggregate import (
    BandwidthAggregator,
    LatencyAggregator,
    MissRatioAggregator,
    StandardTelemetry,
)

#: The systems each probe sweep covers, in canonical order.
PROBE_SYSTEMS = ("rtvirt", "rtxen", "credit")
#: Default seeds — two per system so per-system merging is exercised.
PROBE_SEEDS = (1, 2)
#: Default simulated duration per cell (seconds).
PROBE_DURATION_S = 1.0


def _probe_spec(system: str, seed: int, duration_s: float) -> dict:
    """One fixed mixed workload: two RT VMs, a sporadic RTA, background."""
    return {
        "system": {"type": system, "pcpus": 2},
        "duration_s": duration_s,
        "seed": seed,
        "vms": [
            {
                "name": "vm1",
                "tasks": [
                    {"name": "rta1", "slice_ms": 8, "period_ms": 20},
                    {"name": "rta2", "slice_ms": 5, "period_ms": 10},
                ],
            },
            {
                "name": "vm2",
                "tasks": [
                    {"name": "rta3", "slice_ms": 10, "period_ms": 25},
                    {
                        "name": "sp1",
                        "slice_ms": 2,
                        "period_ms": 50,
                        "kind": "sporadic",
                        "min_interarrival_ms": 50,
                        "max_interarrival_ms": 200,
                    },
                ],
            },
            {"name": "bg", "background": True},
        ],
    }


def run_probe_shard(system: str, seed: int, duration_s: float = PROBE_DURATION_S) -> dict:
    """Worker body: run one (system, seed) cell, return its snapshot."""
    from ..scenario import run_scenario

    holder: Dict[str, StandardTelemetry] = {}

    def attach(sys_obj) -> None:
        holder["telemetry"] = StandardTelemetry(sys_obj.machine.bus)

    result = run_scenario(
        _probe_spec(system, seed, duration_s),
        name=f"probe:{system}:{seed}",
        attach=attach,
    )
    snapshot = holder["telemetry"].snapshot()
    return {
        "system": system,
        "seed": seed,
        "jobs_released": result.report.total_released,
        "snapshot": snapshot,
    }


class ProbeResult:
    """Per-system merged streaming aggregates of one probe sweep."""

    def __init__(self, parts: Sequence[dict]) -> None:
        self.parts = list(parts)
        grouped: Dict[str, List[dict]] = {}
        for part in self.parts:  # parts arrive in canonical unit order
            grouped.setdefault(part["system"], []).append(part["snapshot"])
        self.merged: Dict[str, dict] = {
            system: StandardTelemetry.merge_snapshots(snaps)
            for system, snaps in grouped.items()
        }

    def rows(self) -> List[dict]:
        rows = []
        for system in PROBE_SYSTEMS:
            merged = self.merged.get(system)
            if merged is None:
                continue
            misses = MissRatioAggregator.merge([merged["misses"]])
            latency = LatencyAggregator.merge([merged["latency"]])
            bandwidth = BandwidthAggregator.merge([merged["bandwidth"]])
            decided = misses.decided()
            row = {
                "system": system,
                "jobs_decided": decided,
                "miss_ratio": misses.miss_ratio(),
                "latency_mean_us": (
                    latency.stats.mean if latency.stats.count else 0.0
                ),
                "latency_p99_us": (
                    latency.tail.percentile(99.0) if len(latency.tail) else 0.0
                ),
                "consumed_ms": sum(bandwidth.consumed_ns.values()) / 1e6,
            }
            rows.append(row)
        return rows

    def summary(self) -> str:
        lines = ["telemetry probe (streaming aggregates, merged per system):"]
        for row in self.rows():
            lines.append(
                f"  {row['system']:<7} decided={row['jobs_decided']:>4} "
                f"miss={row['miss_ratio'] * 100:.3f}% "
                f"mean={row['latency_mean_us']:.1f}us "
                f"p99={row['latency_p99_us']:.1f}us "
                f"cpu={row['consumed_ms']:.1f}ms"
            )
        return "\n".join(lines)


def assemble_probe(parts: Sequence[dict]) -> ProbeResult:
    """Module-level assembly function (the executor requires one)."""
    return ProbeResult(parts)


def probe_plan(
    seeds: Sequence[int] = PROBE_SEEDS,
    duration_s: float = PROBE_DURATION_S,
):
    """The probe sweep as an :class:`ExperimentPlan` (not registry-backed)."""
    from ..runner.workunits import ExperimentPlan, WorkUnit

    units = tuple(
        WorkUnit(
            experiment_id="telemetry_probe",
            unit_id=f"telemetry_probe/{system}/seed{seed}",
            fn="repro.telemetry.probe:run_probe_shard",
            kwargs=(
                ("system", system),
                ("seed", seed),
                ("duration_s", duration_s),
            ),
        )
        for system in PROBE_SYSTEMS
        for seed in seeds
    )
    return ExperimentPlan("telemetry_probe", units, assemble_probe)
