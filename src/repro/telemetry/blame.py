"""Deadline-miss root-cause analysis over causal spans.

Given the finalized spans of :class:`~repro.telemetry.spans.SpanBuilder`,
the blame engine attributes every deadline miss to a ranked cause
taxonomy, with per-cause **lost nanoseconds** that sum exactly to the
job's lateness.

Attribution walks the span's non-``run`` intervals *backward* from the
completion instant, taking the latest ``L = lateness`` nanoseconds of
non-execution: had any of that time been execution instead, the job
would have finished by its deadline, so that — and only that — time is
what the miss costs.  Each slice is then classified:

``migration_cost``
    the carrier VCPU was paying a host migration penalty;
``admission_throttle``
    the carrier was shed/decreased by host admission (its bandwidth
    revoked) — checked first, because shedding zeroes the budget and
    would otherwise masquerade as exhaustion;
``budget_exhaustion``
    the carrier's deferrable-server budget was drained;
``hypercall_fault``
    the slice falls inside an injected hypercall drop/delay window, so
    the parameters that would have bought the time never landed;
``host_preemption``
    the carrier held no PCPU for any other reason (a higher-priority
    VCPU, a failed PCPU, ...);
``guest_queueing``
    the carrier *had* the PCPU but the guest scheduler ran another job;
``overload``
    lateness not covered by any non-run time — the job simply carried
    more work than its window (surges, abandoned jobs).

Reports are **mergeable**: :meth:`BlameReport.merge` over shard
snapshots in canonical unit order is byte-identical to a single-stream
run — the same contract PR 4's aggregators honour, gated by
``tools/check_determinism.py --blame``.

This module is the *pure* half: it depends only on spans.  The sharded
sweep that fans robustness cells out over the runner lives in
:mod:`repro.telemetry.blame_plan`, kept separate (and unexported from
the package ``__init__``) so the core simulator's telemetry imports
never reach the scenario/runner layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .spans import Span, SpanBuilder, clip_intervals, subtract_intervals

#: Cause taxonomy; order is the tie-break rank for the primary cause.
CAUSES = (
    "budget_exhaustion",
    "host_preemption",
    "migration_cost",
    "admission_throttle",
    "hypercall_fault",
    "guest_queueing",
    "overload",
)


def _classify_preempted(
    slice_lo: int,
    slice_hi: int,
    carrier: Optional[str],
    builder: SpanBuilder,
    lost: Dict[str, int],
) -> None:
    """Subdivide an off-CPU slice by *why* the carrier lost its PCPU."""
    remaining = [(slice_lo, slice_hi)]
    if carrier is not None:
        for cause, windows in (
            ("admission_throttle", builder.throttled_windows(carrier)),
            ("budget_exhaustion", builder.depleted_windows(carrier)),
            ("hypercall_fault", builder.hypercall_fault_windows()),
        ):
            matched: List[Tuple[int, int]] = []
            for lo, hi in remaining:
                matched.extend(clip_intervals(windows, lo, hi))
            if matched:
                lost[cause] = lost.get(cause, 0) + sum(
                    hi - lo for lo, hi in matched
                )
                remaining = subtract_intervals(remaining, matched)
                if not remaining:
                    return
    uncovered = sum(hi - lo for lo, hi in remaining)
    if uncovered:
        lost["host_preemption"] = lost.get("host_preemption", 0) + uncovered


def attribute_miss(span: Span, builder: SpanBuilder) -> Dict[str, int]:
    """Per-cause lost nanoseconds for one missed span.

    The values sum exactly to ``span.lateness`` — the backward walk
    stops once the lateness is covered, and any shortfall (the job was
    late even counting every stall) is charged to ``overload``.
    """
    lateness = span.lateness
    lost: Dict[str, int] = {}
    if lateness <= 0:
        return lost
    need = lateness
    for start, end, bucket, carrier, _pcpu in reversed(span.intervals):
        if need <= 0:
            break
        if bucket == "run":
            continue
        lo = max(start, end - need)
        need -= end - lo
        if bucket == "migrating":
            lost["migration_cost"] = lost.get("migration_cost", 0) + (end - lo)
        elif bucket == "wait":
            lost["guest_queueing"] = lost.get("guest_queueing", 0) + (end - lo)
        else:  # preempted
            _classify_preempted(lo, end, carrier, builder, lost)
    if need > 0:
        lost["overload"] = lost.get("overload", 0) + need
    return lost


def primary_cause(lost: Dict[str, int]) -> str:
    """The dominant cause; taxonomy order breaks exact ties."""
    return max(CAUSES, key=lambda c: (lost.get(c, 0), -CAUSES.index(c)))


class BlameReport:
    """Aggregate miss blame, mergeable across runner shards."""

    def __init__(self) -> None:
        #: cause -> [misses with this primary cause, total lost ns]
        self.per_cause: Dict[str, List[int]] = {}
        #: task -> cause -> lost ns
        self.per_task: Dict[str, Dict[str, int]] = {}
        self.observed = 0  # spans past their deadline
        self.explained = 0  # of those, attributed to a cause

    def add_miss(self, task: str, lost: Dict[str, int]) -> None:
        self.observed += 1
        if not lost:
            return
        self.explained += 1
        primary = primary_cause(lost)
        entry = self.per_cause.setdefault(primary, [0, 0])
        entry[0] += 1
        task_losses = self.per_task.setdefault(task, {})
        for cause, ns in lost.items():
            self.per_cause.setdefault(cause, [0, 0])[1] += ns
            task_losses[cause] = task_losses.get(cause, 0) + ns

    def total_lost_ns(self) -> int:
        return sum(entry[1] for entry in self.per_cause.values())

    # -- the mergeable-snapshot contract (see aggregate.py) ---------------------------

    def snapshot(self) -> dict:
        return {
            "observed": self.observed,
            "explained": self.explained,
            "per_cause": {
                cause: {"misses": entry[0], "lost_ns": entry[1]}
                for cause, entry in sorted(self.per_cause.items())
            },
            "per_task": {
                task: dict(sorted(losses.items()))
                for task, losses in sorted(self.per_task.items())
            },
        }

    @classmethod
    def merge(cls, snapshots: Sequence[dict]) -> "BlameReport":
        merged = cls()
        for snap in snapshots:
            merged.observed += snap["observed"]
            merged.explained += snap["explained"]
            for cause, entry in snap["per_cause"].items():
                target = merged.per_cause.setdefault(cause, [0, 0])
                target[0] += entry["misses"]
                target[1] += entry["lost_ns"]
            for task, losses in snap["per_task"].items():
                target_losses = merged.per_task.setdefault(task, {})
                for cause, ns in losses.items():
                    target_losses[cause] = target_losses.get(cause, 0) + ns
        return merged


def analyze_spans(builder: SpanBuilder) -> Tuple[BlameReport, List[dict]]:
    """Blame every missed span; returns (report, per-miss records)."""
    report = BlameReport()
    misses: List[dict] = []
    for span in builder.spans:
        if not span.missed:
            continue
        lost = attribute_miss(span, builder)
        report.add_miss(span.task, lost)
        misses.append(
            {
                "task": span.task,
                "job": span.job,
                "release": span.release,
                "deadline": span.deadline,
                "lateness_ns": span.lateness,
                "incomplete": span.incomplete,
                "primary": primary_cause(lost) if lost else "none",
                "lost_ns": dict(sorted(lost.items())),
            }
        )
    return report, misses

