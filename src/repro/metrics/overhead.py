"""Scheduler-overhead accounting (Table 6).

The paper instruments Xen's ``schedule()`` function and context-switch
path and reports, per framework and scenario, the total time spent in
each plus the combined overhead as a percentage of total runtime.  The
simulator charges those costs through the host cost model and records
them here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OverheadStats:
    """Time and invocation counts of the host scheduler's hot paths."""

    schedule_calls: int = 0
    schedule_time: int = 0
    context_switches: int = 0
    context_switch_time: int = 0
    migrations: int = 0
    migration_time: int = 0
    hypercalls: int = 0
    hypercall_time: int = 0

    def record_schedule(self, cost: int) -> None:
        self.schedule_calls += 1
        self.schedule_time += cost

    def record_context_switch(self, cost: int) -> None:
        self.context_switches += 1
        self.context_switch_time += cost

    def record_migration(self, cost: int) -> None:
        self.migrations += 1
        self.migration_time += cost

    def record_hypercall(self, cost: int) -> None:
        self.hypercalls += 1
        self.hypercall_time += cost

    @property
    def switch_and_migration_time(self) -> int:
        """Context-switch column of Table 6 (includes migration cost)."""
        return self.context_switch_time + self.migration_time

    def total_overhead_time(self) -> int:
        """All accounted overhead, ns."""
        return (
            self.schedule_time
            + self.context_switch_time
            + self.migration_time
            + self.hypercall_time
        )

    def overhead_percent(self, total_cpu_time: int) -> float:
        """Overhead as percent of *total_cpu_time* (runtime × PCPUs)."""
        if total_cpu_time <= 0:
            raise ValueError("total_cpu_time must be positive")
        return 100.0 * self.total_overhead_time() / total_cpu_time

    def mean_schedule_call_usec(self) -> float:
        """Average duration of one schedule() invocation, µs."""
        if self.schedule_calls == 0:
            return 0.0
        return self.schedule_time / self.schedule_calls / 1_000.0

    def as_table6_row(self, total_cpu_time: int) -> Dict[str, float]:
        """The three columns of a Table 6 row (times in µs)."""
        return {
            "schedule_us": self.schedule_time / 1_000.0,
            "context_switch_us": self.switch_and_migration_time / 1_000.0,
            "overhead_percent": self.overhead_percent(total_cpu_time),
        }


@dataclass
class PcpuUsage:
    """Busy/idle accounting for one PCPU."""

    busy: int = 0
    overhead: int = 0

    def utilization(self, wall: int) -> float:
        if wall <= 0:
            raise ValueError("wall time must be positive")
        return (self.busy + self.overhead) / wall


@dataclass
class HostMetrics:
    """Top-level container the machine model writes into."""

    overhead: OverheadStats = field(default_factory=OverheadStats)
    per_pcpu: Dict[int, PcpuUsage] = field(default_factory=dict)

    def pcpu(self, index: int) -> PcpuUsage:
        if index not in self.per_pcpu:
            self.per_pcpu[index] = PcpuUsage()
        return self.per_pcpu[index]

    def total_busy(self) -> int:
        return sum(u.busy for u in self.per_pcpu.values())
