"""Percentile and CDF math used across the evaluation.

The paper reports 90th/95th/99th/99.9th percentile latencies (Table 4,
Figure 5) and CDF curves.  We use the nearest-rank definition on the
sorted sample, which is what latency-measurement tools like Mutilate
report and is well-defined for the small-tail quantiles we care about.

All query helpers route through :class:`SortedSamples`, which sorts the
sample exactly once; callers that ask several questions of the same
sample (every tail + CDF + SLO check) should construct one and reuse
it.  :func:`merge_sorted_samples` combines already-sorted shards in
linear time — the runner's aggregate merge uses it to recombine
per-work-unit samples without re-sorting the union.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple


def _rank(p: float, n: int) -> int:
    """Nearest-rank index with float-noise protection (ceil of p*n/100)."""
    return max(1, math.ceil(p * n / 100.0 - 1e-9))


class SortedSamples:
    """A sample sorted once, answering any number of percentile queries."""

    __slots__ = ("ordered",)

    def __init__(self, samples: Sequence[float], *, presorted: bool = False):
        self.ordered: List[float] = (
            list(samples) if presorted else sorted(samples)
        )

    def __len__(self) -> int:
        return len(self.ordered)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (p in (0, 100])."""
        if not self.ordered:
            raise ValueError("percentile() of an empty sample")
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        return self.ordered[_rank(p, len(self.ordered)) - 1]

    def percentiles(self, ps: Sequence[float]) -> Dict[float, float]:
        """Several percentiles over the one shared sort."""
        if not self.ordered:
            raise ValueError("percentiles() of an empty sample")
        return {p: self.percentile(p) for p in ps}

    def tail_summary(self) -> Dict[float, float]:
        """90/95/99/99.9th percentiles, the row format of Table 4."""
        return self.percentiles(TAIL_PERCENTILES)

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(value, cumulative_fraction) points of the empirical CDF."""
        if not self.ordered:
            return []
        n = len(self.ordered)
        points: List[Tuple[float, float]] = []
        for i, v in enumerate(self.ordered, start=1):
            if points and points[-1][0] == v:
                points[-1] = (v, i / n)
            else:
                points.append((v, i / n))
        return points

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples <= threshold (SLO attainment)."""
        if not self.ordered:
            raise ValueError("fraction_below() of an empty sample")
        return bisect_right(self.ordered, threshold) / len(self.ordered)

    def mean(self) -> float:
        """Arithmetic mean."""
        if not self.ordered:
            raise ValueError("mean() of an empty sample")
        return sum(self.ordered) / len(self.ordered)


def merge_sorted_samples(shards: Iterable[Sequence[float]]) -> List[float]:
    """Merge already-sorted shards into one sorted list (linear time).

    The result equals ``sorted(chain(*shards))`` whenever every shard is
    itself sorted, so percentiles of the merge are byte-identical to
    percentiles of the concatenation — the property the runner's
    serial-vs-parallel determinism gate relies on.
    """
    return list(heapq.merge(*shards))


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of *samples* (p in (0, 100])."""
    return SortedSamples(samples).percentile(p)


def percentiles(samples: Sequence[float], ps: Sequence[float]) -> Dict[float, float]:
    """Several percentiles computed over one sort of *samples*."""
    return SortedSamples(samples).percentiles(ps)


#: The tail percentiles Table 4 reports.
TAIL_PERCENTILES = (90.0, 95.0, 99.0, 99.9)


def tail_summary(samples: Sequence[float]) -> Dict[float, float]:
    """90/95/99/99.9th percentiles, the row format of Table 4."""
    return SortedSamples(samples).tail_summary()


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative_fraction) points of the empirical CDF.

    Duplicate values collapse to a single point carrying the highest
    cumulative fraction, so the series is strictly increasing in x and
    non-decreasing in y — directly plottable as Figure 5's curves.
    """
    return SortedSamples(samples).cdf_points()


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (SLO attainment)."""
    return SortedSamples(samples).fraction_below(threshold)


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not samples:
        raise ValueError("mean() of an empty sample")
    return sum(samples) / len(samples)
