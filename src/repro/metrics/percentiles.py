"""Percentile and CDF math used across the evaluation.

The paper reports 90th/95th/99th/99.9th percentile latencies (Table 4,
Figure 5) and CDF curves.  We use the nearest-rank definition on the
sorted sample, which is what latency-measurement tools like Mutilate
report and is well-defined for the small-tail quantiles we care about.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def _rank(p: float, n: int) -> int:
    """Nearest-rank index with float-noise protection (ceil of p*n/100)."""
    return max(1, math.ceil(p * n / 100.0 - 1e-9))


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of *samples* (p in (0, 100])."""
    if not samples:
        raise ValueError("percentile() of an empty sample")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    ordered = sorted(samples)
    return ordered[_rank(p, len(ordered)) - 1]


def percentiles(samples: Sequence[float], ps: Sequence[float]) -> Dict[float, float]:
    """Several percentiles computed over one sort of *samples*."""
    if not samples:
        raise ValueError("percentiles() of an empty sample")
    ordered = sorted(samples)
    out = {}
    for p in ps:
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        out[p] = ordered[_rank(p, len(ordered)) - 1]
    return out


#: The tail percentiles Table 4 reports.
TAIL_PERCENTILES = (90.0, 95.0, 99.0, 99.9)


def tail_summary(samples: Sequence[float]) -> Dict[float, float]:
    """90/95/99/99.9th percentiles, the row format of Table 4."""
    return percentiles(samples, TAIL_PERCENTILES)


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative_fraction) points of the empirical CDF.

    Duplicate values collapse to a single point carrying the highest
    cumulative fraction, so the series is strictly increasing in x and
    non-decreasing in y — directly plottable as Figure 5's curves.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(ordered, start=1):
        if points and points[-1][0] == v:
            points[-1] = (v, i / n)
        else:
            points.append((v, i / n))
    return points


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (SLO attainment)."""
    if not samples:
        raise ValueError("fraction_below() of an empty sample")
    return sum(1 for s in samples if s <= threshold) / len(samples)


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not samples:
        raise ValueError("mean() of an empty sample")
    return sum(samples) / len(samples)
