"""Request-latency recording for the memcached experiments.

Latency here is the paper's NIC-to-NIC definition: from the instant the
request reaches the host to the instant the response is ready to leave,
i.e. job release to job completion inside the simulation.  An optional
constant network delay can be added when reporting client-side numbers
(the paper measured 19 µs at the 99.9th percentile and excluded it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..simcore.time import to_usec
from .percentiles import SortedSamples


@dataclass
class LatencyRecorder:
    """Collects per-request latencies (integer ns) for one service."""

    name: str = "latency"
    samples_ns: List[int] = field(default_factory=list)
    # Sorted-µs view, keyed on the sample count so appends (and
    # merge_recorders' direct extends) invalidate it automatically.
    _sorted_cache: Optional[Tuple[int, SortedSamples]] = field(
        default=None, repr=False, compare=False
    )

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples_ns.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples_ns)

    @property
    def samples_usec(self) -> List[float]:
        """All samples converted to microseconds."""
        return [to_usec(s) for s in self.samples_ns]

    def _sorted_usec(self) -> SortedSamples:
        """The µs samples sorted once and reused until the sample grows."""
        cache = self._sorted_cache
        if cache is None or cache[0] != len(self.samples_ns):
            cache = (len(self.samples_ns), SortedSamples(self.samples_usec))
            self._sorted_cache = cache
        return cache[1]

    def tail_usec(self) -> Dict[float, float]:
        """90/95/99/99.9th percentile latencies in µs (a Table 4 row)."""
        return self._sorted_usec().tail_summary()

    def p999_usec(self) -> float:
        """The 99.9th percentile latency in µs."""
        return self._sorted_usec().percentile(99.9)

    def mean_usec(self) -> float:
        """Average latency in µs."""
        return self._sorted_usec().mean()

    def cdf_usec(self) -> List[Tuple[float, float]]:
        """Empirical CDF points in µs (a Figure 5 curve)."""
        return self._sorted_usec().cdf_points()

    def slo_attainment(self, slo_usec: float) -> float:
        """Fraction of requests at or below *slo_usec*."""
        return self._sorted_usec().fraction_below(slo_usec)

    def meets_slo(self, slo_usec: float, quantile: float = 99.9) -> bool:
        """True when the given percentile is within the SLO."""
        return self._sorted_usec().percentile(quantile) <= slo_usec


def merge_recorders(recorders: Sequence[LatencyRecorder], name: str = "merged") -> LatencyRecorder:
    """Aggregate several recorders (Figure 5b merges 5 memcached VMs)."""
    merged = LatencyRecorder(name=name)
    for r in recorders:
        merged.samples_ns.extend(r.samples_ns)
    return merged
