"""Statistical rigor helpers for reporting reproduction results.

Miss ratios and tail percentiles from finite runs carry sampling error;
these helpers quantify it so EXPERIMENTS.md-style claims ("0 misses in
4,800 jobs") can be stated with confidence bounds, without external
dependencies.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..simcore.rng import RandomSource


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 misses observed still yields a
    non-zero upper bound — the honest claim for "no misses in n jobs").
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _z_value(confidence)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def miss_ratio_upper_bound(misses: int, jobs: int, confidence: float = 0.95) -> float:
    """Upper confidence bound on the true miss ratio."""
    return wilson_interval(misses, jobs, confidence)[1]


def bootstrap_percentile_ci(
    samples: Sequence[float],
    p: float,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for the p-th percentile.

    Deterministic given *seed*; used for the p99.9 figures where the
    estimate rides on a handful of tail samples.
    """
    from .percentiles import percentile

    if not samples:
        raise ValueError("empty sample")
    rng = RandomSource(seed, f"bootstrap:{p}:{len(samples)}")
    n = len(samples)
    estimates: List[float] = []
    data = list(samples)
    for _ in range(resamples):
        resample = [data[rng.uniform_int(0, n - 1)] for _ in range(n)]
        estimates.append(percentile(resample, p))
    estimates.sort()
    alpha = (1 - confidence) / 2
    lo = estimates[max(0, int(alpha * resamples))]
    hi = estimates[min(resamples - 1, int((1 - alpha) * resamples))]
    return (lo, hi)


def _z_value(confidence: float) -> float:
    """Normal quantile for two-sided confidence (rational approximation)."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    # Acklam's inverse-normal approximation on the upper tail point.
    p = 1 - (1 - confidence) / 2
    a = [-39.6968302866538, 220.946098424521, -275.928510446969,
         138.357751867269, -30.6647980661472, 2.50662827745924]
    b = [-54.4760987982241, 161.585836858041, -155.698979859887,
         66.8013118877197, -13.2806815528857]
    c = [-0.00778489400243029, -0.322396458041136, -2.40075827716184,
         -2.54973253934373, 4.37466414146497, 2.93816398269878]
    d = [0.00778469570904146, 0.32246712907004, 2.445134137143,
         3.75440866190742]
    plow = 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - plow:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
