"""Deadline accounting.

Each real-time task carries a :class:`DeadlineStats`; experiment
harnesses aggregate them into per-VM and per-system summaries.  The
paper's headline metric is the deadline-miss ratio (RTVirt targets
meeting >= 99% of deadlines; the worst case observed is 0.8%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class DeadlineStats:
    """Deadline outcomes for one task."""

    released: int = 0
    completed: int = 0
    met: int = 0
    missed: int = 0
    response_times: List[int] = field(default_factory=list)
    #: largest (completion - deadline) over all misses, ns
    worst_tardiness: int = 0
    #: completion instants of missed jobs, ns (misses are rare, so this
    #: stays tiny; it feeds the robustness suite's recovery latency)
    miss_times: List[int] = field(default_factory=list)

    def record_release(self) -> None:
        self.released += 1

    def record_completion(self, release: int, deadline: int, completion: int) -> None:
        """Record a finished job and whether it made its deadline."""
        self.completed += 1
        self.response_times.append(completion - release)
        if completion <= deadline:
            self.met += 1
        else:
            self.missed += 1
            self.worst_tardiness = max(self.worst_tardiness, completion - deadline)
            self.miss_times.append(completion)

    def record_abandoned(self, deadline_passed: bool) -> None:
        """Record a job still unfinished at the end of the run."""
        if deadline_passed:
            self.missed += 1

    @property
    def decided(self) -> int:
        """Jobs whose deadline outcome is known."""
        return self.met + self.missed

    @property
    def miss_ratio(self) -> float:
        """Fraction of decided jobs that missed, 0.0 when nothing decided."""
        if self.decided == 0:
            return 0.0
        return self.missed / self.decided

    @property
    def met_ratio(self) -> float:
        """Fraction of decided jobs that met their deadline."""
        if self.decided == 0:
            return 1.0
        return self.met / self.decided


@dataclass
class MissReport:
    """Aggregated deadline outcomes over a set of tasks."""

    per_task: Dict[str, DeadlineStats]

    @property
    def total_released(self) -> int:
        return sum(s.released for s in self.per_task.values())

    @property
    def total_met(self) -> int:
        return sum(s.met for s in self.per_task.values())

    @property
    def total_missed(self) -> int:
        return sum(s.missed for s in self.per_task.values())

    @property
    def overall_miss_ratio(self) -> float:
        decided = self.total_met + self.total_missed
        if decided == 0:
            return 0.0
        return self.total_missed / decided

    @property
    def tasks_with_misses(self) -> List[str]:
        """Names of tasks that missed at least one deadline."""
        return sorted(name for name, s in self.per_task.items() if s.missed > 0)

    @property
    def worst_task_miss_ratio(self) -> float:
        """The highest per-task miss ratio (the paper quotes 0.136% / 0.8%)."""
        if not self.per_task:
            return 0.0
        return max(s.miss_ratio for s in self.per_task.values())

    def task_miss_ratio(self, name: str) -> float:
        return self.per_task[name].miss_ratio

    @property
    def all_miss_times(self) -> List[int]:
        """Completion instants of every recorded miss, sorted ascending."""
        times: List[int] = []
        for stats in self.per_task.values():
            times.extend(stats.miss_times)
        times.sort()
        return times

    def recovery_latency_ns(self, fault_time_ns: int) -> int:
        """Time from *fault_time_ns* to the last miss it can explain.

        0 when no miss completes at or after the fault — the system
        absorbed it without a single post-fault deadline miss.
        """
        after = [t for t in self.all_miss_times if t >= fault_time_ns]
        return (after[-1] - fault_time_ns) if after else 0


def collect_miss_report(tasks: Iterable) -> MissReport:
    """Build a :class:`MissReport` from objects exposing ``.name``/``.stats``."""
    return MissReport(per_task={t.name: t.stats for t in tasks})
