"""CPU-bandwidth accounting in units of CPUs.

Figure 3 compares, per RTA group, four bandwidth quantities:

- **RTA-Req** — what the task set mathematically needs (sum of s/p),
- **RT-Xen: Allocated** — what CSA assigns to the VMs' VCPU servers,
- **RT-Xen: Claimed** — the whole CPUs DMPR sets aside,
- **RTVirt** — RTA requirement plus the per-VCPU scheduling slack.

All quantities are exact :class:`fractions.Fraction` CPU counts; the
report converts to percent-of-one-CPU for the figure's y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple

from ..simcore.time import bandwidth as bw_fraction


@dataclass(frozen=True)
class BandwidthBreakdown:
    """One group's bar cluster in Figure 3."""

    group: str
    rta_required: Fraction
    rtxen_allocated: Fraction
    rtxen_claimed: Fraction
    rtvirt: Fraction

    @property
    def rtxen_wasted(self) -> Fraction:
        """Bandwidth RT-Xen claims beyond what the RTAs need."""
        return self.rtxen_claimed - self.rta_required

    @property
    def rtvirt_overhead(self) -> Fraction:
        """Extra bandwidth RTVirt allocates beyond the RTA requirement."""
        return self.rtvirt - self.rta_required

    def as_percent(self) -> Dict[str, float]:
        """The four bars in percent of one CPU (Figure 3's y-axis)."""
        return {
            "RTA-Req": float(self.rta_required) * 100.0,
            "RT-Xen: Allocated": float(self.rtxen_allocated) * 100.0,
            "RT-Xen: Claimed": float(self.rtxen_claimed) * 100.0,
            "RTVirt": float(self.rtvirt) * 100.0,
        }


def total_bandwidth(pairs: Iterable[Tuple[int, int]]) -> Fraction:
    """Sum of slice/period bandwidths over (slice_ns, period_ns) pairs."""
    total = Fraction(0)
    for slice_ns, period_ns in pairs:
        total += bw_fraction(slice_ns, period_ns)
    return total


def average_extra_cpu(breakdowns: Sequence[BandwidthBreakdown], kind: str) -> float:
    """Average wasted/extra CPUs across groups.

    ``kind`` is 'rtxen' (claimed minus required; the paper reports 0.736
    CPUs on average) or 'rtvirt' (slack overhead).
    """
    if not breakdowns:
        raise ValueError("no breakdowns")
    if kind == "rtxen":
        return float(sum(b.rtxen_wasted for b in breakdowns)) / len(breakdowns)
    if kind == "rtvirt":
        return float(sum(b.rtvirt_overhead for b in breakdowns)) / len(breakdowns)
    raise ValueError(f"unknown kind {kind!r}")


def claimed_savings_percent(breakdowns: Sequence[BandwidthBreakdown]) -> float:
    """Average percent of claimed bandwidth RTVirt saves vs RT-Xen.

    The paper reports 39.4% here (RTVirt claimed vs RT-Xen claimed).
    """
    savings: List[float] = []
    for b in breakdowns:
        if b.rtxen_claimed > 0:
            savings.append(float(1 - b.rtvirt / b.rtxen_claimed) * 100.0)
    if not savings:
        raise ValueError("no comparable groups")
    return sum(savings) / len(savings)


def allocated_savings_percent(breakdowns: Sequence[BandwidthBreakdown]) -> float:
    """Average percent of allocated bandwidth RTVirt saves vs RT-Xen.

    The paper reports 6.8% here (RTVirt vs RT-Xen allocated).
    """
    savings: List[float] = []
    for b in breakdowns:
        if b.rtxen_allocated > 0:
            savings.append(float(1 - b.rtvirt / b.rtxen_allocated) * 100.0)
    if not savings:
        raise ValueError("no comparable groups")
    return sum(savings) / len(savings)
