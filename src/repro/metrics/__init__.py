"""Measurement: deadlines, latencies, bandwidth and overhead accounting."""

from .bandwidth import (
    BandwidthBreakdown,
    allocated_savings_percent,
    average_extra_cpu,
    claimed_savings_percent,
    total_bandwidth,
)
from .deadlines import DeadlineStats, MissReport, collect_miss_report
from .latency import LatencyRecorder, merge_recorders
from .overhead import HostMetrics, OverheadStats, PcpuUsage
from .percentiles import (
    TAIL_PERCENTILES,
    cdf_points,
    fraction_below,
    mean,
    percentile,
    percentiles,
    tail_summary,
)
from .stats import bootstrap_percentile_ci, miss_ratio_upper_bound, wilson_interval

__all__ = [
    "BandwidthBreakdown",
    "total_bandwidth",
    "average_extra_cpu",
    "claimed_savings_percent",
    "allocated_savings_percent",
    "DeadlineStats",
    "MissReport",
    "collect_miss_report",
    "LatencyRecorder",
    "merge_recorders",
    "HostMetrics",
    "OverheadStats",
    "PcpuUsage",
    "percentile",
    "percentiles",
    "tail_summary",
    "cdf_points",
    "fraction_below",
    "mean",
    "TAIL_PERCENTILES",
    "wilson_interval",
    "miss_ratio_upper_bound",
    "bootstrap_percentile_ci",
]
