"""Time units and helpers for the integer-nanosecond simulation clock.

All simulated time in this package is an ``int`` number of nanoseconds.
Using integers keeps event ordering exact (no float drift), which matters
because schedulers here make decisions at microsecond granularity over
simulated minutes.

The constants below convert the units the paper uses (µs, ms, s) into the
internal representation.  Prefer ``usec(5)`` over ``5 * USEC`` in user
code; the function form validates its input.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

#: One nanosecond (the base unit).
NSEC: int = 1
#: One microsecond in nanoseconds.
USEC: int = 1_000
#: One millisecond in nanoseconds.
MSEC: int = 1_000_000
#: One second in nanoseconds.
SEC: int = 1_000_000_000

Number = Union[int, float, Fraction]


def _scale(value: Number, unit: int, name: str) -> int:
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError(f"{name}() expects a number, got bool")
    if isinstance(value, int):
        result = value * unit
    elif isinstance(value, Fraction):
        scaled = value * unit
        if scaled.denominator != 1:
            raise ValueError(f"{name}({value!r}) is not an integer nanosecond count")
        result = int(scaled)
    elif isinstance(value, float):
        scaled_f = value * unit
        result = round(scaled_f)
        if abs(scaled_f - result) > 0.5:  # pragma: no cover - defensive
            raise ValueError(f"{name}({value!r}) cannot be represented in ns")
    else:
        raise TypeError(f"{name}() expects int, float or Fraction, got {type(value).__name__}")
    return result


def nsec(value: Number) -> int:
    """Return *value* nanoseconds as an integer tick count."""
    return _scale(value, NSEC, "nsec")


def usec(value: Number) -> int:
    """Return *value* microseconds in nanoseconds."""
    return _scale(value, USEC, "usec")


def msec(value: Number) -> int:
    """Return *value* milliseconds in nanoseconds."""
    return _scale(value, MSEC, "msec")


def sec(value: Number) -> int:
    """Return *value* seconds in nanoseconds."""
    return _scale(value, SEC, "sec")


def to_usec(ticks: int) -> float:
    """Convert integer nanoseconds to (float) microseconds for reporting."""
    return ticks / USEC


def to_msec(ticks: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds for reporting."""
    return ticks / MSEC


def to_sec(ticks: int) -> float:
    """Convert integer nanoseconds to (float) seconds for reporting."""
    return ticks / SEC


def format_time(ticks: int) -> str:
    """Render a tick count using the most natural unit.

    >>> format_time(1_500_000)
    '1.500ms'
    >>> format_time(250_000)
    '250.000us'
    """
    if ticks >= SEC:
        return f"{ticks / SEC:.3f}s"
    if ticks >= MSEC:
        return f"{ticks / MSEC:.3f}ms"
    if ticks >= USEC:
        return f"{ticks / USEC:.3f}us"
    return f"{ticks}ns"


def bandwidth(slice_ticks: int, period_ticks: int) -> Fraction:
    """Exact CPU bandwidth of a (slice, period) reservation.

    The result is a :class:`fractions.Fraction` so admission-control sums
    are exact; convert to float only when reporting.
    """
    if period_ticks <= 0:
        raise ValueError(f"period must be positive, got {period_ticks}")
    if slice_ticks < 0:
        raise ValueError(f"slice must be non-negative, got {slice_ticks}")
    return Fraction(slice_ticks, period_ticks)
