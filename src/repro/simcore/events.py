"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, priority, sequence)``: ties at the
same instant break first on an explicit priority (smaller runs first) and
then on insertion order, which keeps the simulation deterministic.

Cancellation is lazy: :meth:`EventQueue.cancel` marks the event and the
queue discards it when it reaches the top of the heap.  This is the usual
O(log n) heap discipline without the cost of re-heapifying on cancel.

Event state machine: a pushed event is *pending* (``active``); it leaves
that state exactly once, either by being popped (*consumed*) or by being
cancelled.  The queue's live count is decremented on exactly that one
transition, so ``len(queue)`` can never underflow — cancelling an event
that already fired is a no-op, not a double decrement.

The heap stores ``(time, priority, seq, event)`` tuples rather than the
events themselves: heap sift comparisons then run entirely on C-level
tuples instead of calling :meth:`Event.__lt__`, which matters because
heap traffic dominates the engine's hot path.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from .errors import SimulationError

# Well-known priorities.  Work synchronization (charging elapsed CPU time)
# conceptually happens before any state change at an instant, scheduler
# decisions happen after releases/completions have been observed.
PRIORITY_RELEASE = 0
PRIORITY_COMPLETION = 10
PRIORITY_BUDGET = 20
PRIORITY_FAULT = 25
PRIORITY_SCHEDULE = 30
PRIORITY_DEFAULT = 50
PRIORITY_METRICS = 90


class Event:
    """A scheduled callback.

    Instances are created through :meth:`EventQueue.push` (or the engine's
    ``schedule_*`` helpers) rather than directly.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "consumed", "name")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been popped (its callback ran or is
        #: about to run).  A consumed event can no longer be cancelled.
        self.consumed = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark this event so the queue skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending: neither cancelled nor fired."""
        return not self.cancelled and not self.consumed

    def _key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.consumed:
            state = "consumed"
        else:
            state = "pending"
        return f"<Event {self.name} t={self.time} prio={self.priority} {state}>"


#: Heap entry: the comparison key inline, the event payload last.  The
#: sequence number is unique, so comparisons never reach the event.
_Entry = Tuple[int, int, int, Event]


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    #: Compact the heap once more than this many cancelled entries linger
    #: *and* they outnumber the live ones.  Mass cancellation (a PCPU
    #: failure revoking hundreds of in-flight timers at once) would
    #: otherwise leave the heap dominated by dead entries that every
    #: subsequent sift still has to wade through.
    _COMPACT_MIN_DEAD = 64

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0
        #: Cancelled entries still sitting in the heap (not yet discarded
        #: by the lazy pop path).  Invariant: ``len(_heap) == _live + _dead``.
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback(\\*args)* at absolute *time* and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time, priority, self._seq, callback, args, name)
        heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.

        Idempotent, and a no-op on events that already fired: only the
        single pending→cancelled transition decrements the live count.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if (
                self._dead > self._COMPACT_MIN_DEAD
                and self._dead > self._live
            ):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        Keys ``(time, priority, seq)`` are unique, so heapifying the
        surviving entries yields exactly the pop order the lazy path
        would have produced — compaction is invisible to determinism.
        """
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)
        self._dead = 0

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event, marking it consumed.

        Raises :class:`SimulationError` when the queue is empty.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap:
            raise SimulationError("pop from an empty event queue")
        event = heappop(heap)[3]
        event.consumed = True
        self._live -= 1
        return event

    def pop_at(self, time: int) -> Optional[Event]:
        """Pop the next live event iff it is scheduled at exactly *time*.

        One heap inspection serves both the "is there more work at this
        instant" test and the pop — the engine's batch loop hot path.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap or heap[0][0] != time:
            return None
        event = heappop(heap)[3]
        event.consumed = True
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event.

        Dropped events are marked cancelled so stale handles held by
        components (e.g. a scheduler's exhaust timer) read as inactive
        rather than forever-pending after a reset.
        """
        for _, _, _, event in self._heap:
            if not event.consumed:
                event.cancelled = True
        self._heap.clear()
        self._live = 0
        self._dead = 0
