"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, priority, sequence)``: ties at the
same instant break first on an explicit priority (smaller runs first) and
then on insertion order, which keeps the simulation deterministic.

Cancellation is lazy: :meth:`EventQueue.cancel` marks the event and the
queue discards it when it surfaces.  This is the usual O(log n) heap
discipline without the cost of re-heapifying on cancel.

Event state machine: a pushed event is *pending* (``active``); it leaves
that state exactly once, either by being popped (*consumed*) or by being
cancelled.  The queue's live count is decremented on exactly that one
transition, so ``len(queue)`` can never underflow — cancelling an event
that already fired is a no-op, not a double decrement.

Two queue implementations share that contract and produce *identical*
pop order:

:class:`HeapEventQueue`
    The original single binary heap of ``(time, priority, seq, event)``
    tuples.  Every push and pop pays O(log n) in the total number of
    pending events.

:class:`CalendarEventQueue` (the default)
    A calendar-style queue: a dict of ``time -> bucket`` where each
    bucket is a small heap of ``(priority, seq, event)``, plus a heap of
    the distinct bucket times.  Pushing into an existing instant is
    O(log bucket) — effectively O(1), buckets are tiny — and the
    engine's batch loop (:meth:`~CalendarEventQueue.pop_at`) drains an
    instant with one dict lookup per event instead of sifting the global
    heap.  Simulated entity count therefore stops being heap depth:
    10 000 co-pending timers at distinct instants cost each instant only
    its own bucket.

Select the implementation per process with ``REPRO_EVENT_QUEUE=heap``
(or ``calendar``); ``tools/check_determinism.py --queue`` uses this to
prove the two pop byte-identically over the whole experiment registry.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import SimulationError

# Well-known priorities.  Work synchronization (charging elapsed CPU time)
# conceptually happens before any state change at an instant, scheduler
# decisions happen after releases/completions have been observed.
PRIORITY_RELEASE = 0
PRIORITY_COMPLETION = 10
PRIORITY_BUDGET = 20
PRIORITY_FAULT = 25
PRIORITY_SCHEDULE = 30
PRIORITY_DEFAULT = 50
PRIORITY_METRICS = 90


class Event:
    """A scheduled callback.

    Instances are created through :meth:`EventQueue.push` (or the engine's
    ``schedule_*`` helpers) rather than directly.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "consumed", "name")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been popped (its callback ran or is
        #: about to run).  A consumed event can no longer be cancelled.
        self.consumed = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark this event so the queue skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending: neither cancelled nor fired."""
        return not self.cancelled and not self.consumed

    def _key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.consumed:
            state = "consumed"
        else:
            state = "pending"
        return f"<Event {self.name} t={self.time} prio={self.priority} {state}>"


#: Heap entry: the comparison key inline, the event payload last.  The
#: sequence number is unique, so comparisons never reach the event.
_Entry = Tuple[int, int, int, Event]

#: Calendar-bucket entry: the instant is the dict key, so only the
#: intra-instant key ``(priority, seq)`` travels with the event.
_BucketEntry = Tuple[int, int, Event]


class HeapEventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The original single-binary-heap implementation, kept both as the
    reference for the ``--queue`` byte-identity gate and as a fallback
    (``REPRO_EVENT_QUEUE=heap``).
    """

    #: Compact the heap once more than this many cancelled entries linger
    #: *and* they outnumber the live ones.  Mass cancellation (a PCPU
    #: failure revoking hundreds of in-flight timers at once) would
    #: otherwise leave the heap dominated by dead entries that every
    #: subsequent sift still has to wade through.
    _COMPACT_MIN_DEAD = 64

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0
        #: Cancelled entries still sitting in the heap (not yet discarded
        #: by the lazy pop path).  Invariant: ``len(_heap) == _live + _dead``.
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback(\\*args)* at absolute *time* and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time, priority, self._seq, callback, args, name)
        heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.

        Idempotent, and a no-op on events that already fired: only the
        single pending→cancelled transition decrements the live count.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if (
                self._dead > self._COMPACT_MIN_DEAD
                and self._dead > self._live
            ):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        Keys ``(time, priority, seq)`` are unique, so heapifying the
        surviving entries yields exactly the pop order the lazy path
        would have produced — compaction is invisible to determinism.
        """
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)
        self._dead = 0

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event, marking it consumed.

        Raises :class:`SimulationError` when the queue is empty.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap:
            raise SimulationError("pop from an empty event queue")
        event = heappop(heap)[3]
        event.consumed = True
        self._live -= 1
        return event

    def pop_at(self, time: int) -> Optional[Event]:
        """Pop the next live event iff it is scheduled at exactly *time*.

        One heap inspection serves both the "is there more work at this
        instant" test and the pop — the engine's batch loop hot path.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap or heap[0][0] != time:
            return None
        event = heappop(heap)[3]
        event.consumed = True
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event.

        Dropped events are marked cancelled so stale handles held by
        components (e.g. a scheduler's exhaust timer) read as inactive
        rather than forever-pending after a reset.
        """
        for _, _, _, event in self._heap:
            if not event.consumed:
                event.cancelled = True
        self._heap.clear()
        self._live = 0
        self._dead = 0


class CalendarEventQueue:
    """Calendar/bucket event queue with byte-identical pop order.

    Structure: ``_buckets`` maps each distinct pending instant to a small
    heap of ``(priority, seq, event)``; ``_times`` is a heap of the
    instants themselves.  Global order ``(time, priority, seq)`` is
    recovered as "smallest bucket time, then smallest (priority, seq)
    within it" — sequence numbers are globally unique, so this is the
    exact total order :class:`HeapEventQueue` produces.

    Why it is faster where it matters:

    * ``pop_at(time)`` — the engine's batch loop — is a dict hit plus a
      pop from a (usually single-digit) bucket heap; no traffic on the
      global time heap at all.  Same-instant cascades (release →
      schedule → budget at one ns) never sift past unrelated instants.
    * ``push`` into an instant that is already pending costs
      O(log bucket), independent of how many *other* events are queued.
      A new instant costs one push on the distinct-times heap, which is
      bounded by distinct pending timestamps, not by pending events.

    ``_times`` may hold stale entries (instants whose bucket has since
    drained) and, after an instant drains and is re-scheduled, duplicate
    entries; :meth:`peek_time` discards both lazily.  Empty buckets are
    never stored: every path that drains a bucket deletes it.
    """

    _COMPACT_MIN_DEAD = HeapEventQueue._COMPACT_MIN_DEAD

    __slots__ = ("_buckets", "_times", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[_BucketEntry]] = {}
        self._times: List[int] = []
        self._seq = 0
        self._live = 0
        #: Cancelled entries still sitting in buckets.  Invariant:
        #: ``sum(len(b) for b in _buckets.values()) == _live + _dead``.
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback(\\*args)* at absolute *time* and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        seq = self._seq
        event = Event(time, priority, seq, callback, args, name)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(priority, seq, event)]
            heappush(self._times, time)
        else:
            heappush(bucket, (priority, seq, event))
        self._seq = seq + 1
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.

        Idempotent, and a no-op on events that already fired: only the
        single pending→cancelled transition decrements the live count.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if (
                self._dead > self._COMPACT_MIN_DEAD
                and self._dead > self._live
            ):
                self._compact()

    def _compact(self) -> None:
        """Rebuild every bucket without its cancelled entries.

        Keys ``(priority, seq)`` are unique within a bucket, so
        re-heapifying the survivors yields exactly the pop order the lazy
        path would have produced — compaction is invisible to
        determinism.  Buckets left empty are dropped along with their
        time entries.
        """
        buckets = self._buckets
        for time in list(buckets):
            bucket = [entry for entry in buckets[time] if not entry[2].cancelled]
            if bucket:
                heapify(bucket)
                buckets[time] = bucket
            else:
                del buckets[time]
        self._times = list(buckets)
        heapify(self._times)
        self._dead = 0

    def _head(self) -> Optional[int]:
        """Earliest instant with a live event, discarding stale state.

        Pops drained/duplicate times off ``_times`` and cancelled heads
        off the front bucket until a live head (or emptiness) is reached.
        """
        buckets = self._buckets
        times = self._times
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is None:
                heappop(times)
                continue
            while bucket and bucket[0][2].cancelled:
                heappop(bucket)
                self._dead -= 1
            if not bucket:
                del buckets[time]
                heappop(times)
                continue
            return time
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        return self._head()

    def pop(self) -> Event:
        """Remove and return the next live event, marking it consumed.

        Raises :class:`SimulationError` when the queue is empty.
        """
        time = self._head()
        if time is None:
            raise SimulationError("pop from an empty event queue")
        bucket = self._buckets[time]
        event = heappop(bucket)[2]
        if not bucket:
            del self._buckets[time]
        event.consumed = True
        self._live -= 1
        return event

    def pop_at(self, time: int) -> Optional[Event]:
        """Pop the next live event iff it is scheduled at exactly *time*.

        The engine's batch-loop hot path.  *Iff the head is at time*: an
        event pending at an earlier instant must refuse the pop exactly
        like :class:`HeapEventQueue` does, so the head is located first
        (cheap — mid-batch it is one stale-free peek of the times heap)
        and the pop then only touches that instant's own bucket.
        """
        if self._head() != time:
            return None
        buckets = self._buckets
        bucket = buckets[time]
        event = heappop(bucket)[2]
        if not bucket:
            del buckets[time]
        event.consumed = True
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event.

        Dropped events are marked cancelled so stale handles held by
        components (e.g. a scheduler's exhaust timer) read as inactive
        rather than forever-pending after a reset.
        """
        for bucket in self._buckets.values():
            for _, _, event in bucket:
                if not event.consumed:
                    event.cancelled = True
        self._buckets.clear()
        self._times.clear()
        self._live = 0
        self._dead = 0


#: Implementation registry for ``REPRO_EVENT_QUEUE`` / ``--queue``.
QUEUE_IMPLS = {
    "calendar": CalendarEventQueue,
    "heap": HeapEventQueue,
}


def active_queue_class():
    """The queue implementation selected by ``REPRO_EVENT_QUEUE``.

    Defaults to the calendar queue; the determinism harness's ``--queue``
    mode sets ``REPRO_EVENT_QUEUE=heap`` to re-run the registry on the
    reference heap and compare hashes.
    """
    name = os.environ.get("REPRO_EVENT_QUEUE", "calendar")
    try:
        return QUEUE_IMPLS[name]
    except KeyError:
        raise SimulationError(
            f"unknown REPRO_EVENT_QUEUE={name!r}; expected one of "
            f"{sorted(QUEUE_IMPLS)}"
        ) from None


#: Default implementation under the historical name — the public API is
#: unchanged; callers that construct an ``EventQueue`` get the calendar.
EventQueue = CalendarEventQueue
