"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, priority, sequence)``: ties at the
same instant break first on an explicit priority (smaller runs first) and
then on insertion order, which keeps the simulation deterministic.

Cancellation is lazy: :meth:`EventQueue.cancel` marks the event and the
queue discards it when it reaches the top of the heap.  This is the usual
O(log n) heap discipline without the cost of re-heapifying on cancel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .errors import SimulationError

# Well-known priorities.  Work synchronization (charging elapsed CPU time)
# conceptually happens before any state change at an instant, scheduler
# decisions happen after releases/completions have been observed.
PRIORITY_RELEASE = 0
PRIORITY_COMPLETION = 10
PRIORITY_BUDGET = 20
PRIORITY_SCHEDULE = 30
PRIORITY_DEFAULT = 50
PRIORITY_METRICS = 90


class Event:
    """A scheduled callback.

    Instances are created through :meth:`EventQueue.push` (or the engine's
    ``schedule_*`` helpers) rather than directly.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "name")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark this event so the queue skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def _key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.name} t={self.time} prio={self.priority} {state}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback(\\*args)* at absolute *time* and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time, priority, self._seq, callback, args, name)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
