"""The discrete-event simulation engine.

The engine owns the clock and the event queue.  Components schedule
callbacks at absolute times or after delays; :meth:`Engine.run_until`
advances the clock from event to event.  Several events may share an
instant; they execute in ``(priority, insertion)`` order, and the clock
never moves backwards.

A *post-event hook* can be registered (the machine model uses it to let
the host scheduler re-evaluate after every batch of same-instant events).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional

from .errors import SimulationError
from .events import PRIORITY_DEFAULT, Event, active_queue_class


class Engine:
    """Deterministic discrete-event executor with an integer-ns clock."""

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_in_batch",
        "_post_hooks",
        "_events_processed",
        "_profile",
        "_uid_counter",
    )

    def __init__(self) -> None:
        # Resolved per engine so REPRO_EVENT_QUEUE (the determinism
        # harness's --queue mode) can flip implementations in-process.
        self._queue = active_queue_class()()
        self._now = 0
        self._running = False
        self._in_batch = False
        self._post_hooks: List[Callable[[], None]] = []
        self._events_processed = 0
        self._uid_counter = 0
        #: Optional self-profiler (see :mod:`repro.telemetry.profile`).
        #: When unset the batch loop is the original untimed hot path.
        self._profile = None

    def next_uid(self) -> int:
        """Dense run-scoped entity ids (VCPU uids).

        Engine-owned so ids depend only on creation order within the
        run, never on process history — recorded traces hash
        identically across serial, parallel and replayed executions.
        """
        uid = self._uid_counter
        self._uid_counter += 1
        return uid

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or with ``None`` remove) an event-phase profiler.

        While installed, every executed event reports ``(name, wall
        seconds)`` through the profiler's ``record_phase``; phases are
        derived from the event-name prefix before the first ``":"``
        (``"replenish:vm1.vcpu0"`` profiles as phase ``"replenish"``).
        """
        self._profile = profiler

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def in_batch(self) -> bool:
        """True while events of the current batch are being drained.

        Post-event hooks are guaranteed to run once the batch drains, so
        work requested from inside an event handler needs no extra
        trigger event; work requested from a post-hook (or from outside
        the engine) does.
        """
        return self._in_batch

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback* at absolute *time* (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {name or callback!r} at {time} before now={self._now}"
            )
        return self._queue.push(time, callback, *args, priority=priority, name=name)

    def after(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        name: str = "",
    ) -> Event:
        """Schedule *callback* ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority, name=name)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event; None and already-cancelled are no-ops."""
        if event is not None:
            self._queue.cancel(event)

    def add_post_hook(self, hook: Callable[[], None]) -> None:
        """Run *hook* after each batch of same-instant events.

        Hooks are invoked once per distinct timestamp, after every event at
        that timestamp (including events the batch itself scheduled for the
        same instant) has executed.
        """
        self._post_hooks.append(hook)

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, if any."""
        return self._queue.peek_time()

    def run_until(self, end_time: int) -> int:
        """Execute events up to and including *end_time*.

        Returns the final clock value, which is ``end_time`` (the clock is
        advanced to the horizon even if the queue drains early, so metrics
        windows are well-defined).
        """
        if end_time < self._now:
            raise SimulationError(f"run_until({end_time}) is in the past (now={self._now})")
        if self._running:
            raise SimulationError("run_until() is not reentrant")
        self._running = True
        peek_time = self._queue.peek_time
        execute_batch = self._execute_batch
        try:
            while True:
                next_time = peek_time()
                if next_time is None or next_time > end_time:
                    break
                self._now = next_time
                execute_batch(next_time)
            self._now = end_time
        finally:
            self._running = False
        return self._now

    def run_next(self) -> Optional[int]:
        """Execute the next batch of same-instant events; return its time.

        Returns None when the queue is empty.  Useful for stepping tests.
        """
        next_time = self._queue.peek_time()
        if next_time is None:
            return None
        if next_time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue went backwards")
        self._now = next_time
        self._execute_batch(next_time)
        return next_time

    def _execute_batch(self, time: int) -> None:
        # Hot path: everything needed inside the loop is bound to locals
        # once per batch, and no per-batch scratch objects are allocated —
        # the same hook list is reused across every batch of the run.
        pop_at = self._queue.pop_at
        processed = 0
        profile = self._profile
        self._in_batch = True
        try:
            if profile is None:
                while True:
                    event = pop_at(time)
                    if event is None:
                        break
                    processed += 1
                    event.callback(*event.args)
            else:
                record_phase = profile.record_phase
                while True:
                    event = pop_at(time)
                    if event is None:
                        break
                    processed += 1
                    started = perf_counter()
                    event.callback(*event.args)
                    record_phase(event.name, perf_counter() - started)
        finally:
            self._in_batch = False
        self._events_processed += processed
        for hook in self._post_hooks:
            hook()
