"""Per-host clock offset and drift.

A cluster simulation shares one engine — and therefore one *true*
timeline — across every host, but real hosts do not share a clock:
each TSC boots with its own epoch and ticks at its own rate (802.1AS /
PTP exists precisely because offsets of microseconds to milliseconds
and drifts of tens of ppm are the norm on unsynchronised machines).

:class:`HostClock` maps the engine's true time to one host's *local*
reading with exact integer arithmetic::

    local(t) = t + offset_ns + t * drift_ppb // 1_000_000_000

Deadlines make the mapping observable.  A deadline *released* on host A
(stamped in A's local clock) and *checked* on host B (against B's local
clock — the situation live migration creates) misses or meets depending
on the relative offset, even when the true-time response would have
been fine.  Same-host checks are offset-invariant — ``local(c) <=
local(r) + D`` reduces to ``c <= r + D`` when offset cancels — so only
cross-host checks (and drift over long windows) can diverge from the
engine's own deadline accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

_NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class HostClock:
    """One host's local clock, relative to the engine's true time.

    *offset_ns* is the reading of this clock at true time 0;
    *drift_ppb* is its rate error in parts per billion (positive: the
    clock runs fast).  Both default to 0 — the synchronised reference
    clock, under which :meth:`local` is the identity.
    """

    offset_ns: int = 0
    drift_ppb: int = 0

    def __post_init__(self) -> None:
        if self.drift_ppb <= -_NS_PER_S:
            raise ConfigurationError(
                f"drift {self.drift_ppb} ppb stops or reverses the clock"
            )

    def local(self, global_ns: int) -> int:
        """This host's clock reading at true (engine) time *global_ns*."""
        return global_ns + self.offset_ns + global_ns * self.drift_ppb // _NS_PER_S

    def to_global(self, local_ns: int) -> int:
        """True time at which this clock reads *local_ns* (inverse map).

        Exact for zero drift; with drift the floor-division inverse is
        within 1 ns of the fixed point, which is below every modelled
        timescale.
        """
        return (local_ns - self.offset_ns) * _NS_PER_S // (_NS_PER_S + self.drift_ppb)

    @property
    def synchronized(self) -> bool:
        return self.offset_ns == 0 and self.drift_ppb == 0
