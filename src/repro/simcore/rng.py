"""Seeded random streams for reproducible experiments.

Every stochastic element of an experiment (each workload's arrival
process, each service-time distribution, the dynamic-RTA churn, ...)
draws from its own named stream derived from the experiment seed, so
adding a new random consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


class RandomSource:
    """A named, independently seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str) -> None:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self.name = name
        self.seed = seed

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return self._rng.uniform(low, high)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian sample."""
        return self._rng.gauss(mean, stddev)

    def normal_positive(self, mean: float, stddev: float, floor: float = 0.0) -> float:
        """Gaussian sample clamped below at *floor* (inter-arrival times)."""
        return max(floor, self._rng.gauss(mean, stddev))

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal sample (natural-log parameters)."""
        return self._rng.lognormvariate(mu, sigma)

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def choice(self, items):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(items)

    def shuffle(self, items) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()


class RandomStreams:
    """Factory of independent named :class:`RandomSource` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._issued: dict = {}

    def stream(self, name: str) -> RandomSource:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._issued:
            self._issued[name] = RandomSource(self.seed, name)
        return self._issued[name]

    def streams(self, prefix: str, count: int) -> Iterator[RandomSource]:
        """Yield ``count`` independent streams named ``prefix[i]``."""
        for i in range(count):
            yield self.stream(f"{prefix}[{i}]")
