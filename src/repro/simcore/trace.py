"""Structured execution tracing.

The tracer records what ran where and when: execution segments per PCPU,
context switches, migrations, deadline misses, hypercalls.  Experiments
use it to reconstruct timelines (Figure 1's schedule diagram, Figure 4's
allocation-over-time series) without instrumenting the schedulers.

Since the telemetry refactor the tracer is one consumer among many: the
machine publishes typed events on its :class:`~repro.telemetry.bus.
TelemetryBus` and a connected trace converts them back into the legacy
``Segment``/``TraceEvent`` records (byte-identical to what the old
direct-recording path produced).  The direct ``record_*`` API remains
for tests and ad-hoc callers.

Tracing is off by default; enabling it costs one tuple append per event
of interest.  Long-running simulations can bound memory with
``Trace(capacity=N)``, which turns both record lists into ring buffers
keeping the most recent N entries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Segment:
    """A contiguous stretch of one VCPU running on one PCPU."""

    pcpu: int
    vcpu: str
    task: Optional[str]
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """A point event of interest (switch, migration, miss, hypercall...)."""

    time: int
    kind: str
    detail: Tuple = ()


@dataclass
class Trace:
    """Accumulated trace of one simulation run.

    With ``capacity`` set, ``segments`` and ``events`` become bounded
    ring buffers (``collections.deque`` with that ``maxlen``) so a
    connected trace cannot grow without limit on long runs; unbounded
    lists remain the default for exact post-hoc analysis.
    """

    enabled: bool = True
    segments: List[Segment] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity is not None:
            if self.capacity < 1:
                raise ValueError(f"trace capacity must be >= 1, got {self.capacity}")
            self.segments = deque(self.segments, maxlen=self.capacity)
            self.events = deque(self.events, maxlen=self.capacity)
        self._disconnect = None

    def record_segment(
        self, pcpu: int, vcpu: str, task: Optional[str], start: int, end: int
    ) -> None:
        """Record that *vcpu* (running *task*) occupied *pcpu* on [start, end)."""
        if not self.enabled or end <= start:
            return
        self.segments.append(Segment(pcpu, vcpu, task, start, end))

    def record_event(self, time: int, kind: str, *detail) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, kind, tuple(detail)))

    # -- telemetry-bus subscription ----------------------------------------

    def connect(self, bus) -> "Trace":
        """Subscribe to *bus*, recording legacy records for its events.

        Replaces any previous connection.  The handlers reproduce the
        exact records the machine used to write directly: segments from
        ``SEGMENT_END``; ``"switch"``, ``"complete"`` and ``"fault"``
        point events from their typed counterparts.
        """
        from ..telemetry import events as E

        self.disconnect()
        cancels = [
            bus.subscribe(E.SEGMENT_END, self._on_segment),
            bus.subscribe(E.CONTEXT_SWITCH, self._on_switch),
            bus.subscribe(E.JOB_COMPLETE, self._on_complete),
            bus.subscribe(E.FAULT_INJECTED, self._on_fault),
            bus.subscribe(E.FAULT_RECOVERED, self._on_fault),
        ]

        def disconnect() -> None:
            for cancel in cancels:
                cancel()

        self._disconnect = disconnect
        return self

    def disconnect(self) -> None:
        """Drop this trace's bus subscriptions (no-op when unconnected)."""
        if getattr(self, "_disconnect", None) is not None:
            self._disconnect()
            self._disconnect = None

    def _on_segment(self, event) -> None:
        self.record_segment(event.pcpu, event.vcpu, event.task, event.start, event.end)

    def _on_switch(self, event) -> None:
        # The legacy trace only recorded switches *to* a VCPU; idle
        # transitions exist solely as typed bus events.
        if event.vcpu is not None:
            self.record_event(
                event.time, "switch", event.pcpu, event.vcpu, event.migrated
            )

    def _on_complete(self, event) -> None:
        self.record_event(event.time, "complete", event.task, event.job)

    def _on_fault(self, event) -> None:
        self.record_event(event.time, "fault", event.fault, *event.detail)

    # -- queries -----------------------------------------------------------

    def segments_for_vcpu(self, vcpu: str) -> List[Segment]:
        """All segments in which *vcpu* ran, in time order."""
        return [s for s in self.segments if s.vcpu == vcpu]

    def segments_for_task(self, task: str) -> List[Segment]:
        """All segments in which *task* ran, in time order."""
        return [s for s in self.segments if s.task == task]

    def segments_for_pcpu(self, pcpu: int) -> List[Segment]:
        """All segments executed on *pcpu*, in time order."""
        return [s for s in self.segments if s.pcpu == pcpu]

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All point events whose kind equals *kind*."""
        return [e for e in self.events if e.kind == kind]

    def busy_time(self, pcpu: Optional[int] = None) -> int:
        """Total traced execution time, optionally restricted to one PCPU."""
        if pcpu is None:
            return sum(s.duration for s in self.segments)
        return sum(s.duration for s in self.segments if s.pcpu == pcpu)

    def vcpu_usage_between(self, vcpu: str, start: int, end: int) -> int:
        """Execution time *vcpu* received inside the window [start, end)."""
        total = 0
        for s in self.segments:
            if s.vcpu != vcpu:
                continue
            lo = max(s.start, start)
            hi = min(s.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def usage_series(
        self, vcpu: str, start: int, end: int, bucket: int
    ) -> List[Tuple[int, int]]:
        """(bucket_start, usage) samples for *vcpu* over [start, end).

        Used to regenerate Figure 4's allocation-over-time curves.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        series = []
        t = start
        while t < end:
            series.append((t, self.vcpu_usage_between(vcpu, t, min(t + bucket, end))))
            t += bucket
        return series

    def iter_overlaps(self) -> Iterator[Tuple[Segment, Segment]]:
        """Yield pairs of segments that overlap in time on the same PCPU.

        A correct simulation yields nothing; tests use this as an invariant.
        """
        by_pcpu: Dict[int, List[Segment]] = {}
        for s in self.segments:
            by_pcpu.setdefault(s.pcpu, []).append(s)
        for segs in by_pcpu.values():
            segs = sorted(segs, key=lambda s: s.start)
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end:
                    yield (a, b)


class NullTrace(Trace):
    """A trace that records nothing (default when tracing is disabled)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
