"""Structured execution tracing.

The tracer records what ran where and when: execution segments per PCPU,
context switches, migrations, deadline misses, hypercalls.  Experiments
use it to reconstruct timelines (Figure 1's schedule diagram, Figure 4's
allocation-over-time series) without instrumenting the schedulers.

Tracing is off by default; enabling it costs one tuple append per event
of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Segment:
    """A contiguous stretch of one VCPU running on one PCPU."""

    pcpu: int
    vcpu: str
    task: Optional[str]
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """A point event of interest (switch, migration, miss, hypercall...)."""

    time: int
    kind: str
    detail: Tuple = ()


@dataclass
class Trace:
    """Accumulated trace of one simulation run."""

    enabled: bool = True
    segments: List[Segment] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)

    def record_segment(
        self, pcpu: int, vcpu: str, task: Optional[str], start: int, end: int
    ) -> None:
        """Record that *vcpu* (running *task*) occupied *pcpu* on [start, end)."""
        if not self.enabled or end <= start:
            return
        self.segments.append(Segment(pcpu, vcpu, task, start, end))

    def record_event(self, time: int, kind: str, *detail) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, kind, tuple(detail)))

    # -- queries -----------------------------------------------------------

    def segments_for_vcpu(self, vcpu: str) -> List[Segment]:
        """All segments in which *vcpu* ran, in time order."""
        return [s for s in self.segments if s.vcpu == vcpu]

    def segments_for_task(self, task: str) -> List[Segment]:
        """All segments in which *task* ran, in time order."""
        return [s for s in self.segments if s.task == task]

    def segments_for_pcpu(self, pcpu: int) -> List[Segment]:
        """All segments executed on *pcpu*, in time order."""
        return [s for s in self.segments if s.pcpu == pcpu]

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All point events whose kind equals *kind*."""
        return [e for e in self.events if e.kind == kind]

    def busy_time(self, pcpu: Optional[int] = None) -> int:
        """Total traced execution time, optionally restricted to one PCPU."""
        if pcpu is None:
            return sum(s.duration for s in self.segments)
        return sum(s.duration for s in self.segments if s.pcpu == pcpu)

    def vcpu_usage_between(self, vcpu: str, start: int, end: int) -> int:
        """Execution time *vcpu* received inside the window [start, end)."""
        total = 0
        for s in self.segments:
            if s.vcpu != vcpu:
                continue
            lo = max(s.start, start)
            hi = min(s.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def usage_series(
        self, vcpu: str, start: int, end: int, bucket: int
    ) -> List[Tuple[int, int]]:
        """(bucket_start, usage) samples for *vcpu* over [start, end).

        Used to regenerate Figure 4's allocation-over-time curves.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        series = []
        t = start
        while t < end:
            series.append((t, self.vcpu_usage_between(vcpu, t, min(t + bucket, end))))
            t += bucket
        return series

    def iter_overlaps(self) -> Iterator[Tuple[Segment, Segment]]:
        """Yield pairs of segments that overlap in time on the same PCPU.

        A correct simulation yields nothing; tests use this as an invariant.
        """
        by_pcpu: Dict[int, List[Segment]] = {}
        for s in self.segments:
            by_pcpu.setdefault(s.pcpu, []).append(s)
        for segs in by_pcpu.values():
            segs = sorted(segs, key=lambda s: s.start)
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end:
                    yield (a, b)


class NullTrace(Trace):
    """A trace that records nothing (default when tracing is disabled)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
