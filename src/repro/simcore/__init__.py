"""Deterministic discrete-event simulation core.

Public surface:

- :class:`Engine` — the event loop and clock
- :class:`Event`, :class:`EventQueue` — scheduling primitives
- :class:`RandomStreams`, :class:`RandomSource` — reproducible randomness
- :class:`Trace` — structured execution tracing
- time helpers (:func:`usec`, :func:`msec`, :func:`sec`, ...)
"""

from .engine import Engine
from .errors import (
    AdmissionError,
    AnalysisError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from .events import (
    PRIORITY_BUDGET,
    PRIORITY_COMPLETION,
    PRIORITY_DEFAULT,
    PRIORITY_METRICS,
    PRIORITY_RELEASE,
    PRIORITY_SCHEDULE,
    Event,
    EventQueue,
)
from .rng import RandomSource, RandomStreams
from .time import (
    MSEC,
    NSEC,
    SEC,
    USEC,
    bandwidth,
    format_time,
    msec,
    nsec,
    sec,
    to_msec,
    to_sec,
    to_usec,
    usec,
)
from .trace import NullTrace, Segment, Trace, TraceEvent

__all__ = [
    "Engine",
    "Event",
    "EventQueue",
    "RandomSource",
    "RandomStreams",
    "Trace",
    "NullTrace",
    "Segment",
    "TraceEvent",
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "AdmissionError",
    "ConfigurationError",
    "AnalysisError",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "nsec",
    "usec",
    "msec",
    "sec",
    "to_usec",
    "to_msec",
    "to_sec",
    "format_time",
    "bandwidth",
    "PRIORITY_RELEASE",
    "PRIORITY_COMPLETION",
    "PRIORITY_BUDGET",
    "PRIORITY_SCHEDULE",
    "PRIORITY_DEFAULT",
    "PRIORITY_METRICS",
]
