"""Exception hierarchy for the repro simulation stack.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch simulation-level failures
without swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class SchedulingError(ReproError):
    """A scheduler violated one of its internal invariants."""


class AdmissionError(ReproError):
    """An admission-control request was rejected.

    Carries enough context for callers to distinguish guest-level from
    host-level rejections.
    """

    def __init__(self, message: str, *, level: str = "host") -> None:
        super().__init__(message)
        self.level = level


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class AnalysisError(ReproError):
    """A real-time analysis routine could not produce a valid result."""
