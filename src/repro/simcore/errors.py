"""Exception hierarchy for the repro simulation stack.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch simulation-level failures
without swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class SchedulingError(ReproError):
    """A scheduler violated one of its internal invariants."""


class AdmissionError(ReproError):
    """An admission-control request was rejected.

    Carries enough context for callers to distinguish guest-level from
    host-level rejections.
    """

    def __init__(self, message: str, *, level: str = "host") -> None:
        super().__init__(message)
        self.level = level


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class InvariantViolation(SimulationError):
    """An online invariant check failed at a scheduling decision point.

    Raised by :class:`repro.faults.invariants.InvariantChecker`.  Carries
    the violated *rule* name, the simulated *time_ns* of the offending
    decision, and *window* — the most recent decision snapshots (oldest
    first) so the failure can be diagnosed without re-running the
    simulation under a tracer.
    """

    def __init__(self, rule: str, time_ns: int, message: str, window=()) -> None:
        super().__init__(f"[{rule}] t={time_ns}ns: {message}")
        self.rule = rule
        self.time_ns = time_ns
        self.window = tuple(window)


class AnalysisError(ReproError):
    """A real-time analysis routine could not produce a valid result."""
