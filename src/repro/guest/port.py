"""The guest side of the cross-layer interface.

A :class:`CrossLayerPort` is what a guest scheduler talks to when it
needs host-level bandwidth decisions.  Under RTVirt this is backed by
the ``sched_rtvirt()`` hypercall plus the shared-memory page
(:mod:`repro.core.hypercall`); for the baseline systems (RT-Xen, Credit)
it is a :class:`LocalPort` that grants everything, because those systems
configure VM bandwidth offline and have no online cross-layer channel —
which is precisely the limitation the paper's motivation describes.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

from .vcpu import VCPU

#: A requested parameter change for one VCPU: (vcpu, budget_ns, period_ns).
ParamUpdate = Tuple[VCPU, int, int]


class CrossLayerPort(abc.ABC):
    """Guest-to-host channel for bandwidth requests."""

    @abc.abstractmethod
    def request_increase(self, updates: List[ParamUpdate]) -> bool:
        """INC_BW / INC_DEC_BW: ask the host to commit *updates*.

        The host runs admission control over the whole batch atomically.
        Returns True and applies the parameters on success; returns False
        and changes nothing on rejection.
        """

    @abc.abstractmethod
    def notify_decrease(self, updates: List[ParamUpdate]) -> None:
        """DEC_BW: inform the host of reduced requirements.

        Decreases never fail admission; the host applies them directly.
        """

    @abc.abstractmethod
    def vcpu_added(self, vcpu: VCPU) -> None:
        """A CPU-hotplug event added *vcpu* to the VM."""


class StaticPort(CrossLayerPort):
    """Grant-all port that never touches VCPU parameters.

    Used by RT-Xen VMs: their VCPU servers are fixed offline by CSA, so
    guest-level registration must not renegotiate the host interface.
    """

    def request_increase(self, updates: List[ParamUpdate]) -> bool:
        return True

    def notify_decrease(self, updates: List[ParamUpdate]) -> None:
        return None

    def vcpu_added(self, vcpu: VCPU) -> None:
        return None


class LocalPort(CrossLayerPort):
    """Accept-all port used when no cross-layer channel exists.

    Applies parameter updates to the VCPUs locally so that guest-side
    bookkeeping stays consistent, but performs no host admission — the
    host scheduler for baseline systems uses statically configured
    parameters instead.
    """

    def request_increase(self, updates: List[ParamUpdate]) -> bool:
        for vcpu, budget_ns, period_ns in updates:
            vcpu.set_params(budget_ns, period_ns)
            vcpu.admitted = True
        return True

    def notify_decrease(self, updates: List[ParamUpdate]) -> None:
        for vcpu, budget_ns, period_ns in updates:
            vcpu.set_params(budget_ns, period_ns)

    def vcpu_added(self, vcpu: VCPU) -> None:
        vcpu.admitted = True
