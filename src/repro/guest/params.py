"""Deriving host-visible VCPU parameters from the RTAs pinned to a VCPU.

Paper §3.3: *"Each VCPU is configured with a budget and period according
to the slice and period parameters of its RTAs: the budget is derived
using the sum of the bandwidths of all the RTAs, and the period is
decided by the smallest period among the RTAs' periods.  In practice,
the budget of the VCPU should be set slightly higher (e.g., 500µs more
in our evaluation) than what the RTAs need in order to compensate for
scheduling overhead of both the guest and VMM levels."*

This module implements exactly that derivation.  It lives in the guest
package because, in the paper's architecture, the *guest-level*
scheduler computes these parameters and pushes them to the host through
the ``sched_rtvirt()`` hypercall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..simcore.errors import ConfigurationError
from .task import Task, TaskKind


@dataclass(frozen=True)
class VCPUParams:
    """A host-visible (budget, period) reservation."""

    budget_ns: int
    period_ns: int

    @property
    def bandwidth(self) -> Fraction:
        return Fraction(self.budget_ns, self.period_ns)

    def feasible(self) -> bool:
        """A single VCPU cannot use more than one physical CPU."""
        return 0 <= self.budget_ns <= self.period_ns


def derive_vcpu_params(
    tasks: Sequence[Task],
    slack_ns: int = 0,
    extra: Optional[Iterable[Fraction]] = None,
) -> VCPUParams:
    """Compute the VCPU (budget, period) for a set of pinned RTAs.

    *extra* optionally adds bandwidths of tasks not yet in *tasks* (used
    when testing whether a candidate placement would fit).  The budget is
    rounded up to whole nanoseconds, then the slack is added.
    """
    rt = [t for t in tasks if t.kind is not TaskKind.BACKGROUND]
    if not rt and not extra:
        raise ConfigurationError("cannot derive VCPU params without RT tasks")
    if slack_ns < 0:
        raise ConfigurationError(f"negative slack {slack_ns}")
    bw = sum((t.bandwidth for t in rt), Fraction(0))
    periods = [t.period_ns for t in rt]
    if extra is not None:
        for b in extra:
            bw += b
    if not periods:
        raise ConfigurationError("extra bandwidth requires at least one period source")
    period = min(periods)
    budget = math.ceil(bw * period) + slack_ns
    return VCPUParams(budget_ns=budget, period_ns=period)


def fits_on_vcpu(
    tasks: Sequence[Task],
    candidate: Task,
    slack_ns: int = 0,
) -> bool:
    """Would *candidate* plus the existing *tasks* still fit in one CPU?

    A VCPU is feasible when the derived budget does not exceed the derived
    period (bandwidth plus slack ratio <= 1); additionally the guest-level
    EDF admission requires the raw task bandwidth sum <= 1.
    """
    rt = [t for t in tasks if t.kind is not TaskKind.BACKGROUND]
    bw = sum((t.bandwidth for t in rt), Fraction(0)) + candidate.bandwidth
    if bw > 1:
        return False
    period = min([t.period_ns for t in rt] + [candidate.period_ns])
    budget = math.ceil(bw * period) + slack_ns
    return budget <= period
