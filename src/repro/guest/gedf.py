"""Global-EDF guest scheduler (ablation; paper §3.2 argues against it).

The paper keeps Linux's SCHED_DEADLINE *global* EDF only as a strawman:
gEDF lets jobs migrate between VCPUs, which complicates deriving the
VCPU parameters and adds migration overhead.  We implement it so the
pEDF-vs-gEDF design choice can be measured (``bench_ablation_guest_sched``).

Placement still pins tasks for bandwidth accounting (the host interface
needs per-VCPU parameters either way), but dispatch is global: a VCPU
with no local work claims the earliest-deadline unclaimed job anywhere
in the VM.  Claims prevent two VCPUs from running one job concurrently;
the machine model releases a VCPU's claim whenever it loses its PCPU.

Bandwidth mutations (register/adjust/unregister) are inherited from
pEDF and therefore flow through the host's actuation port
(:class:`repro.control.port.ActuationPort`) whenever the VM is attached
to a machine — gEDF adds no mutation paths of its own.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..telemetry import events as T
from .pedf import PEDFGuestScheduler
from .task import Job, TaskKind
from .vcpu import VCPU


class GEDFGuestScheduler(PEDFGuestScheduler):
    """pEDF admission/placement with global (migrating) EDF dispatch."""

    name = "gEDF"
    #: Released jobs enter the VM-wide pool: any sibling VCPU may claim
    #: them, so span consumers see ``scope == "global"`` enqueues.
    enqueue_scope = "global"

    def __init__(self, vm, slack_ns: int = 0) -> None:
        super().__init__(vm, slack_ns)
        self._claims: Dict[int, Job] = {}  # vcpu uid -> claimed job
        self.migrations = 0

    def _claimed_elsewhere(self, job: Job, vcpu: VCPU) -> bool:
        for uid, claimed in self._claims.items():
            if claimed is job and uid != vcpu.uid:
                return True
        return False

    def pick_job(self, vcpu: VCPU, now: int) -> Optional[Job]:
        """Earliest-deadline unclaimed job across the whole VM."""
        best: Optional[Job] = None
        best_key = None
        for task in self.vm.tasks:
            job = task.head_job()
            if job is None or job.done:
                continue
            if self._claimed_elsewhere(job, vcpu):
                continue
            key = (
                0 if job.deadline is not None else 1,
                job.deadline if job.deadline is not None else 0,
                task.seq,
                job.index,
            )
            if best_key is None or key < best_key:
                best = job
                best_key = key
        previous = self._claims.get(vcpu.uid)
        if best is None:
            self._claims.pop(vcpu.uid, None)
        else:
            self._claims[vcpu.uid] = best
            if (
                previous is not best
                and best.task.kind is not TaskKind.BACKGROUND
                and best.task.vcpu is not None
                and best.task.vcpu is not vcpu
            ):
                self.migrations += 1
                machine = getattr(self.vm, "machine", None)
                if machine is not None and machine.bus.has_subscribers(T.MIGRATION):
                    machine.bus.publish(
                        T.MIGRATION,
                        T.MigrationEvent(
                            now,
                            best.task.name,
                            best.task.vcpu.index,
                            vcpu.index,
                            "guest",
                        ),
                    )
        return best

    def on_vcpu_descheduled(self, vcpu: VCPU) -> None:
        """Release the claim so siblings can pick the job up (migration)."""
        self._claims.pop(vcpu.uid, None)
