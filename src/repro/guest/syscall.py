"""Linux-flavoured system-call veneer.

The paper stresses that applications need no modification: they use the
existing ``sched_setattr()`` system call, whose implementation RTVirt
extends.  This module mirrors that surface so example code reads like
the user-space programs in the paper.
"""

from __future__ import annotations

from typing import Optional

from .task import Task, TaskKind
from .vcpu import VCPU
from .vm import VM


def sched_setattr(
    vm: VM,
    name: str,
    runtime_ns: int,
    period_ns: int,
    sporadic: bool = False,
) -> Task:
    """Register a new RTA with SCHED_DEADLINE-style attributes.

    ``runtime_ns``/``period_ns`` follow ``struct sched_attr`` naming
    (runtime = the paper's slice; deadline = period in the implicit-
    deadline model the paper uses).  Returns the registered task.
    """
    kind = TaskKind.SPORADIC if sporadic else TaskKind.PERIODIC
    task = Task(name, runtime_ns, period_ns, kind)
    vm.register_task(task)
    return task


def sched_adjust(vm: VM, task: Task, runtime_ns: int, period_ns: int) -> VCPU:
    """Modify an RTA's attributes (the dynamic-requirement path)."""
    return vm.adjust_task(task, runtime_ns, period_ns)


def sched_unregister(vm: VM, task: Task) -> None:
    """Drop an RTA back to non-time-sensitive scheduling."""
    vm.unregister_task(task)


def sched_getattr(task: Task) -> dict:
    """Inspect a task's current attributes and placement."""
    return {
        "runtime_ns": task.slice_ns,
        "period_ns": task.period_ns,
        "kind": task.kind.value,
        "vcpu": task.vcpu.name if task.vcpu is not None else None,
        "bandwidth": float(task.bandwidth),
    }


def nr_vcpus(vm: VM) -> int:
    """Number of online VCPUs (grows under CPU hotplug)."""
    return len(vm.vcpus)


__all__ = [
    "sched_setattr",
    "sched_adjust",
    "sched_unregister",
    "sched_getattr",
    "nr_vcpus",
]
