"""The virtual machine model.

A VM bundles VCPUs, a guest scheduler, its tasks, and the cross-layer
port through which the guest scheduler negotiates bandwidth with the
host.  Workload drivers interact with the VM through the system-call
surface (:meth:`register_task`, :meth:`adjust_task`,
:meth:`unregister_task`, :meth:`release_job`) — applications in the
paper use unmodified ``sched_setattr()``; these methods are that
interface.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..simcore.errors import ConfigurationError
from .gedf import GEDFGuestScheduler
from .pedf import PEDFGuestScheduler
from .port import CrossLayerPort, LocalPort
from .task import Job, Task, TaskKind, make_background_task
from .vcpu import VCPU

_SCHEDULERS = {
    "pedf": PEDFGuestScheduler,
    "gedf": GEDFGuestScheduler,
}


class VM:
    """A guest virtual machine."""

    def __init__(
        self,
        name: str,
        vcpu_count: int = 1,
        scheduler: str = "pedf",
        slack_ns: int = 0,
        max_vcpus: Optional[int] = None,
    ) -> None:
        if vcpu_count < 1:
            raise ConfigurationError(f"VM {name} needs at least one VCPU")
        self.name = name
        self.vcpus: List[VCPU] = [VCPU(self, i) for i in range(vcpu_count)]
        self.max_vcpus = max_vcpus if max_vcpus is not None else vcpu_count
        if self.max_vcpus < vcpu_count:
            raise ConfigurationError(f"VM {name}: max_vcpus below initial count")
        if scheduler not in _SCHEDULERS:
            raise ConfigurationError(
                f"unknown guest scheduler {scheduler!r}; choose from {sorted(_SCHEDULERS)}"
            )
        self.guest_scheduler = _SCHEDULERS[scheduler](self, slack_ns)
        #: Cached scheduler-kind flag for the O(1) has-work hot path.
        self._is_gedf = isinstance(self.guest_scheduler, GEDFGuestScheduler)
        self.tasks: List[Task] = []
        self.port: CrossLayerPort = LocalPort()
        self.machine = None  # set when the VM is attached to a Machine
        #: Pending jobs across registered tasks (kept exact by the task
        #: layer so the gEDF :meth:`vcpu_has_work` path is O(1)).
        self._pending_jobs = 0

    # -- configuration ---------------------------------------------------------

    def set_port(self, port: CrossLayerPort) -> None:
        """Install the cross-layer channel (done by the RTVirt system)."""
        self.port = port

    def configure_vcpu(self, index: int, budget_ns: int, period_ns: int) -> None:
        """Statically set a VCPU's host-visible parameters.

        Baseline systems (RT-Xen via CSA, Credit via weights) configure
        VCPU servers offline; this is that path.  Under RTVirt parameters
        normally flow through the hypercall instead.
        """
        self.vcpus[index].set_params(budget_ns, period_ns)
        self.vcpus[index].admitted = True

    @property
    def background_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.kind is TaskKind.BACKGROUND]

    @property
    def rt_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.kind is not TaskKind.BACKGROUND]

    # -- system-call surface (paper Fig. 2: register / adjust / unregister) -----

    def register_task(self, task: Task) -> VCPU:
        """Register an RTA (the ``sched_setattr()`` path).

        Runs guest admission, the cross-layer bandwidth request, and the
        pEDF placement.  Raises :class:`AdmissionError` on rejection.
        """
        if task.vm is not None:
            raise ConfigurationError(f"task {task.name} already belongs to a VM")
        vcpu = self.guest_scheduler.register(task)
        task.vm = self
        self.tasks.append(task)
        self._pending_jobs += len(task.pending)
        self._notify_dispatch_change()
        return vcpu

    def adjust_task(self, task: Task, slice_ns: int, period_ns: int) -> VCPU:
        """Change a registered RTA's timeliness requirement."""
        if task.vm is not self:
            raise ConfigurationError(f"task {task.name} is not registered with {self.name}")
        vcpu = self.guest_scheduler.adjust(task, slice_ns, period_ns)
        self._notify_dispatch_change()
        return vcpu

    def unregister_task(self, task: Task) -> None:
        """Unregister an RTA and release its bandwidth."""
        if task.vm is not self:
            raise ConfigurationError(f"task {task.name} is not registered with {self.name}")
        self.guest_scheduler.unregister(task)
        self.tasks.remove(task)
        task.vm = None
        self._pending_jobs -= len(task.pending)
        self._notify_dispatch_change()

    def add_background_process(self, name: Optional[str] = None) -> Task:
        """Create and register a CPU-bound non-RTA process.

        Its (single, endless) job is released immediately if the VM is
        already attached to a machine, else on attach.
        """
        task = make_background_task(name or f"{self.name}.bg{len(self.background_tasks)}")
        self.guest_scheduler.register(task)
        task.vm = self
        self.tasks.append(task)
        self._pending_jobs += len(task.pending)
        now = self.machine.engine.now if self.machine is not None else 0
        self.release_job(task, now=now)
        return task

    # -- job arrival (workload drivers call this) ----------------------------------

    def release_job(
        self,
        task: Task,
        now: Optional[int] = None,
        work: Optional[int] = None,
        relative_deadline: Optional[int] = None,
        on_complete: Optional[Callable[[Job], None]] = None,
    ) -> Job:
        """Release a job of *task* and notify the host of the wake-up."""
        if task.vm is not self:
            raise ConfigurationError(f"task {task.name} is not registered with {self.name}")
        if now is None:
            if self.machine is None:
                raise ConfigurationError("release_job() needs `now` before attach")
            now = self.machine.engine.now
        job = task.release_job(now, work, relative_deadline, on_complete)
        # Announce before the wake: span consumers must see the release
        # ahead of any scheduling activity it triggers at this instant.
        self.guest_scheduler.on_job_released(task, job, now)
        if self.machine is not None:
            for vcpu in self.wake_targets(task):
                self.machine.notify_wake(vcpu)
        return job

    def _notify_dispatch_change(self) -> None:
        """Tell the machine that task churn may have changed a running
        VCPU's guest pick (re-pins under pEDF, queue transfers, ...)."""
        if self.machine is not None:
            self.machine.notify_dispatch_change(self)

    def wake_targets(self, task: Task) -> List[VCPU]:
        """VCPUs that may run *task*'s new job (pEDF: its pin; gEDF: all)."""
        if isinstance(self.guest_scheduler, GEDFGuestScheduler):
            return list(self.vcpus)
        return [task.vcpu] if task.vcpu is not None else []

    # -- dispatch hooks used by the machine ---------------------------------------

    def pick_job(self, vcpu: VCPU, now: int) -> Optional[Job]:
        return self.guest_scheduler.pick_job(vcpu, now)

    def vcpu_has_work(self, vcpu: VCPU) -> bool:
        """Whether *vcpu* could execute something right now.  O(1)."""
        if self._is_gedf:
            return self._pending_jobs > 0
        return vcpu._pending_jobs > 0

    def on_vcpu_descheduled(self, vcpu: VCPU) -> None:
        self.guest_scheduler.on_vcpu_descheduled(vcpu)

    # -- hotplug -------------------------------------------------------------------

    def hotplug_vcpu(self) -> Optional[VCPU]:
        """Add a VCPU online (paper §3.2); None when at the limit."""
        if len(self.vcpus) >= self.max_vcpus:
            return None
        vcpu = VCPU(self, len(self.vcpus))
        if self.machine is not None:
            vcpu.uid = self.machine.engine.next_uid()
            vcpu.uid_final = True
        self.vcpus.append(vcpu)
        self.port.vcpu_added(vcpu)
        return vcpu

    # -- end-of-run accounting -------------------------------------------------------

    def finalize(self, end_time: int) -> None:
        """Account unfinished jobs at the end of a run."""
        for task in self.tasks:
            task.finalize(end_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VM {self.name} vcpus={len(self.vcpus)} tasks={len(self.tasks)}>"
