"""The RTA (real-time application) task model.

Follows the paper's task model exactly: a task requires a CPU-time slice
``s`` every period ``p``; the deadline of each job is the end of its
period.  Periodic tasks release a job every ``p``; sporadic tasks are
released by an external arrival process with a minimum inter-arrival of
``p``.  Background tasks model non-time-sensitive CPU-bound processes:
they always have work and no deadlines.

Tasks do not schedule themselves — a workload driver releases jobs
through :meth:`Task.release_job`, and the guest scheduler decides which
pending job a VCPU executes.
"""

from __future__ import annotations

import enum
import itertools
from fractions import Fraction
from typing import Callable, List, Optional

from ..metrics.deadlines import DeadlineStats
from ..simcore.errors import ConfigurationError, SimulationError
from ..simcore.time import bandwidth

#: Effectively-infinite work for background tasks (≈ 292 simulated years).
_BACKGROUND_WORK = 2**63


class TaskKind(enum.Enum):
    """How jobs of a task arrive."""

    PERIODIC = "periodic"
    SPORADIC = "sporadic"
    BACKGROUND = "background"


class Job:
    """One activation of a task: a unit of CPU work with a deadline."""

    __slots__ = (
        "task",
        "index",
        "release",
        "deadline",
        "work",
        "remaining",
        "completed_at",
        "on_complete",
    )

    def __init__(
        self,
        task: "Task",
        index: int,
        release: int,
        deadline: Optional[int],
        work: int,
        on_complete: Optional[Callable[["Job"], None]] = None,
    ) -> None:
        if work <= 0:
            raise ConfigurationError(f"job work must be positive, got {work}")
        self.task = task
        self.index = index
        self.release = release
        self.deadline = deadline
        self.work = work
        self.remaining = work
        self.completed_at: Optional[int] = None
        self.on_complete = on_complete

    @property
    def done(self) -> bool:
        return self.remaining == 0

    @property
    def response_time(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.release

    def charge(self, amount: int) -> None:
        """Consume *amount* ns of this job's remaining work."""
        if amount < 0:
            raise SimulationError(f"negative charge {amount}")
        if amount > self.remaining:
            raise SimulationError(
                f"job {self.task.name}#{self.index} overcharged: "
                f"{amount} > remaining {self.remaining}"
            )
        self.remaining -= amount

    def complete(self, now: int) -> None:
        """Mark the job finished at *now* and record its outcome."""
        if not self.done:
            raise SimulationError(
                f"completing job {self.task.name}#{self.index} with "
                f"{self.remaining} ns of work left"
            )
        if self.completed_at is not None:
            raise SimulationError(f"job {self.task.name}#{self.index} completed twice")
        self.completed_at = now
        if self.deadline is not None:
            self.task.stats.record_completion(self.release, self.deadline, now)
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.task.name}#{self.index} rel={self.release} "
            f"dl={self.deadline} rem={self.remaining}/{self.work}>"
        )


class Task:
    """A guest-level application thread with timeliness requirements."""

    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        slice_ns: int,
        period_ns: int,
        kind: TaskKind = TaskKind.PERIODIC,
    ) -> None:
        if kind is not TaskKind.BACKGROUND:
            if slice_ns <= 0 or period_ns <= 0:
                raise ConfigurationError(
                    f"task {name}: slice and period must be positive "
                    f"(got {slice_ns}, {period_ns})"
                )
            if slice_ns > period_ns:
                raise ConfigurationError(
                    f"task {name}: slice {slice_ns} exceeds period {period_ns}"
                )
        self.name = name
        #: Completion-event name, formatted once instead of per arming.
        self.completion_name = f"complete:{name}"
        self.seq = next(Task._ids)
        self.slice_ns = slice_ns
        self.period_ns = period_ns
        self.kind = kind
        self.stats = DeadlineStats()
        self.pending: List[Job] = []  # released, unfinished jobs, FIFO by release
        self._job_counter = itertools.count()
        self.vcpu = None  # set by the guest scheduler when the task is pinned
        self.vm = None  # set on VM.add_task / registration
        self.last_release: Optional[int] = None

    # -- parameters --------------------------------------------------------

    @property
    def bandwidth(self) -> Fraction:
        """Required CPU bandwidth s/p (0 for background tasks)."""
        if self.kind is TaskKind.BACKGROUND:
            return Fraction(0)
        return bandwidth(self.slice_ns, self.period_ns)

    def set_requirement(self, slice_ns: int, period_ns: int) -> None:
        """Change the task's (slice, period).

        Takes effect for jobs released afterwards; the registration layer
        is responsible for re-negotiating bandwidth with the schedulers.
        """
        if slice_ns <= 0 or period_ns <= 0 or slice_ns > period_ns:
            raise ConfigurationError(
                f"task {self.name}: invalid requirement ({slice_ns}, {period_ns})"
            )
        self.slice_ns = slice_ns
        self.period_ns = period_ns

    # -- job lifecycle ------------------------------------------------------

    def release_job(
        self,
        now: int,
        work: Optional[int] = None,
        relative_deadline: Optional[int] = None,
        on_complete: Optional[Callable[[Job], None]] = None,
    ) -> Job:
        """Release a new job at *now*.

        *work* defaults to the task's slice; *relative_deadline* defaults
        to the period (the standard implicit-deadline model).  Sporadic
        releases earlier than the minimum inter-arrival raise.
        """
        if self.kind is TaskKind.SPORADIC and self.last_release is not None:
            if now - self.last_release < self.period_ns:
                raise SimulationError(
                    f"sporadic task {self.name} released {now - self.last_release} ns "
                    f"after previous release (minimum {self.period_ns})"
                )
        if self.kind is TaskKind.BACKGROUND:
            job_work = work if work is not None else _BACKGROUND_WORK
            deadline = None
        else:
            job_work = work if work is not None else self.slice_ns
            rel = relative_deadline if relative_deadline is not None else self.period_ns
            deadline = now + rel
            self.stats.record_release()
        job = Job(self, next(self._job_counter), now, deadline, job_work, on_complete)
        self.pending.append(job)
        self.last_release = now
        self._notify_pending(1)
        return job

    def head_job(self) -> Optional[Job]:
        """The earliest pending job in release order (FIFO within a task)."""
        return self.pending[0] if self.pending else None

    def retire_job(self, job: Job, now: int) -> None:
        """Complete *job* and drop it from the pending queue."""
        job.complete(now)
        self.pending.remove(job)
        self._notify_pending(-1)

    def _notify_pending(self, delta: int) -> None:
        """Keep the VCPU/VM pending-job counters in step with this queue.

        The counters make ``has_work`` O(1) on the scheduler hot path;
        every mutation of :attr:`pending` must route through here (or
        through the pin/registration transfer paths).
        """
        vcpu = self.vcpu
        if vcpu is not None:
            vcpu._pending_jobs += delta
        vm = self.vm
        if vm is not None:
            vm._pending_jobs += delta

    @property
    def has_work(self) -> bool:
        return bool(self.pending)

    def earliest_pending_deadline(self) -> Optional[int]:
        """Earliest deadline among pending jobs, None when idle/undeadlined."""
        best: Optional[int] = None
        for job in self.pending:
            deadline = job.deadline
            if deadline is not None and (best is None or deadline < best):
                best = deadline
        return best

    def next_worst_case_deadline(self, now: int) -> Optional[int]:
        """The next *scheduling boundary* a future job of this task imposes.

        Deadline partitioning requires global slices to end wherever a
        task's demand changes.  For a periodic task that is the next
        release instant itself: the job released there has a deadline one
        period later and must receive its proportional share from the
        release onward, so no slice may span the release.  (While a job
        is pending, the next release coincides with its deadline in the
        implicit-deadline model, so this is exactly "the union of all the
        tasks' deadlines" from the paper; once a job completes early, the
        release boundary must still be respected.)

        For a sporadic task the release time is unknown; the paper's
        worst-case rule applies: the next activation may occur as soon as
        one period after the previous one (or immediately, if that point
        has passed), and the host reserves for a deadline one period
        after that instant.  Background tasks impose no boundaries.
        """
        if self.kind is TaskKind.BACKGROUND:
            return None
        if self.last_release is None:
            next_release = now
        elif self.kind is TaskKind.PERIODIC:
            return self.last_release + self.period_ns
        else:  # sporadic: minimum inter-arrival
            next_release = max(now, self.last_release + self.period_ns)
        return next_release + self.period_ns

    def finalize(self, end_time: int) -> None:
        """Account jobs still unfinished when the simulation ends."""
        for job in self.pending:
            if job.deadline is not None:
                self.task_abandon(job, end_time)

    def task_abandon(self, job: Job, end_time: int) -> None:
        self.stats.record_abandoned(deadline_passed=job.deadline < end_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} ({self.slice_ns}, {self.period_ns}) {self.kind.value}>"


def make_background_task(name: str) -> Task:
    """A CPU-bound task with unbounded work and no deadline."""
    task = Task(name, slice_ns=0, period_ns=1, kind=TaskKind.BACKGROUND)
    return task
