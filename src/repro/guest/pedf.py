"""Partitioned-EDF guest scheduler (RTVirt's guest side, paper §3.2).

Responsibilities:

1. **Admission + placement.** When an RTA registers, find a VCPU with
   enough bandwidth (first-fit).  Before pinning, request the increased
   bandwidth from the host through the cross-layer port (the
   ``sched_rtvirt()`` hypercall with INC_BW).  Only pin once granted.
2. **Adjustment.** Bandwidth increases are handled like registration; if
   the task must move to a different VCPU, both VCPUs' parameters change
   in one INC_DEC_BW request.  Decreases always succeed (DEC_BW).
3. **Reshuffling.** If the VM has enough total bandwidth but it is
   fragmented across VCPUs, re-pack the RTAs (first-fit decreasing).
4. **CPU hotplug.** When even reshuffling cannot fit the task, add a
   VCPU online (if the VM's limit allows) and place the task there.
5. **Dispatch.** Within a VCPU, pending jobs run in EDF order — the
   dispatch itself lives on :meth:`repro.guest.vcpu.VCPU.pick_job`;
   pEDF never migrates jobs between VCPUs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..control.actions import DecBandwidth, IncBandwidth
from ..simcore.errors import AdmissionError, ConfigurationError
from ..telemetry import events as T
from .params import derive_vcpu_params, fits_on_vcpu
from .port import ParamUpdate
from .task import Job, Task, TaskKind
from .vcpu import VCPU


class PEDFGuestScheduler:
    """Partitioned EDF over the VM's VCPUs with cross-layer admission."""

    name = "pEDF"
    #: How released jobs queue for dispatch: pEDF keeps one local queue
    #: per VCPU (jobs never migrate); gEDF overrides with ``"global"``.
    enqueue_scope = "local"

    def __init__(self, vm, slack_ns: int = 0) -> None:
        if slack_ns < 0:
            raise ConfigurationError(f"negative slack {slack_ns}")
        self.vm = vm
        self.slack_ns = slack_ns
        #: Cached interest flag for the release-path events, refreshed
        #: by the bus watcher installed in :meth:`bind_telemetry` (the
        #: same zero-subscriber guard every other producer site uses).
        self._t_release = False
        self._unwatch = None

    # -- telemetry wiring ----------------------------------------------------

    def bind_telemetry(self, bus) -> None:
        """Watch *bus* so the release hot path pays one attribute test.

        Called when the VM attaches to a machine; churn-booted VMs bind
        here too, so a consumer subscribed before the boot still sees
        their release events.
        """
        self.unbind_telemetry()
        self._unwatch = bus.watch(self._on_telemetry_change)

    def unbind_telemetry(self) -> None:
        if self._unwatch is not None:
            self._unwatch()
            self._unwatch = None
        self._t_release = False

    def _on_telemetry_change(self, bus) -> None:
        has = bus.has_subscribers
        self._t_release = has(T.JOB_RELEASE) or has(T.ENQUEUE)

    def on_job_released(self, task: Task, job: Job, now: int) -> None:
        """Announce a released job (span producers; zero cost unwatched).

        Background jobs carry no deadline and are not announced — spans
        trace timeliness, and background work has none.
        """
        if not self._t_release or job.deadline is None:
            return
        machine = self.vm.machine
        if machine is None:
            return
        bus = machine.bus
        vcpu_name = task.vcpu.name if task.vcpu is not None else None
        if bus.has_subscribers(T.JOB_RELEASE):
            bus.publish(
                T.JOB_RELEASE,
                T.JobReleaseEvent(
                    now,
                    self.vm.name,
                    vcpu_name,
                    task.name,
                    job.index,
                    job.release,
                    job.deadline,
                ),
            )
        if bus.has_subscribers(T.ENQUEUE):
            bus.publish(
                T.ENQUEUE,
                T.EnqueueEvent(
                    now,
                    self.vm.name,
                    vcpu_name,
                    task.name,
                    job.index,
                    self.enqueue_scope,
                ),
            )

    # -- cross-layer actuation ------------------------------------------------

    def _control(self):
        """The host's actuation port, when the VM is machine-attached."""
        machine = self.vm.machine
        return machine.control if machine is not None else None

    def _request_increase(self, updates: List[ParamUpdate]) -> bool:
        """INC_BW/INC_DEC_BW through the control plane (or the raw port
        for detached VMs — same call, no observer tap)."""
        control = self._control()
        if control is not None and control.executes(IncBandwidth.kind):
            return control.submit(IncBandwidth(self.vm.port, tuple(updates)))
        return self.vm.port.request_increase(updates)

    def _notify_decrease(self, updates: List[ParamUpdate]) -> None:
        """DEC_BW through the control plane (never rejected)."""
        control = self._control()
        if control is not None and control.executes(DecBandwidth.kind):
            control.submit(DecBandwidth(self.vm.port, tuple(updates)))
            return
        self.vm.port.notify_decrease(updates)

    # -- placement helpers ---------------------------------------------------

    def _params_update(self, vcpu: VCPU, tasks: List[Task]) -> ParamUpdate:
        params = derive_vcpu_params(tasks, self.slack_ns)
        return (vcpu, params.budget_ns, params.period_ns)

    def _first_fit(self, task: Task, exclude: Optional[VCPU] = None) -> Optional[VCPU]:
        for vcpu in self.vm.vcpus:
            if vcpu is exclude:
                continue
            if fits_on_vcpu(vcpu.rt_tasks(), task, self.slack_ns):
                return vcpu
        return None

    def _emit_admission(self, op: str, task: Task, granted: bool, detail: str) -> None:
        """Publish a guest-level admission decision (when anyone listens)."""
        machine = getattr(self.vm, "machine", None)
        if machine is None:
            return
        bus = machine.bus
        if not bus.has_subscribers(T.ADMISSION_DECISION):
            return
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(
                machine.engine.now,
                "guest",
                op,
                task.name,
                granted,
                detail,
                self.vm.name,
            ),
        )

    # -- registration (paper §3.2 case 1) --------------------------------------

    def register(self, task: Task) -> VCPU:
        """Admit *task*; returns the VCPU it was pinned to.

        Raises :class:`AdmissionError` when neither placement, reshuffling
        nor hotplug can accommodate the task.
        """
        try:
            vcpu = self._register(task)
        except AdmissionError as exc:
            self._emit_admission("register", task, False, exc.level)
            raise
        self._emit_admission("register", task, True, vcpu.name)
        return vcpu

    def _register(self, task: Task) -> VCPU:
        if task.kind is TaskKind.BACKGROUND:
            # Background processes need no reservation; spread round-robin.
            vcpu = self.vm.vcpus[len(self.vm.background_tasks) % len(self.vm.vcpus)]
            vcpu.pin_task(task)
            return vcpu
        vcpu = self._first_fit(task)
        if vcpu is not None:
            update = self._params_update(vcpu, vcpu.rt_tasks() + [task])
            if self._request_increase([update]):
                vcpu.pin_task(task)
                return vcpu
            raise AdmissionError(
                f"host rejected bandwidth for {task.name} on {vcpu.name}", level="host"
            )
        placed = self._try_reshuffle(new_task=task)
        if placed is not None:
            return placed
        placed = self._try_hotplug(task)
        if placed is not None:
            return placed
        raise AdmissionError(
            f"VM {self.vm.name} has no VCPU bandwidth for {task.name} "
            f"(needs {float(task.bandwidth):.3f})",
            level="guest",
        )

    # -- adjustment (paper §3.2 cases 2-3) ---------------------------------------

    def adjust(self, task: Task, slice_ns: int, period_ns: int) -> VCPU:
        """Change *task*'s requirement; returns the (possibly new) VCPU."""
        if task.vcpu is None:
            raise ConfigurationError(f"task {task.name} is not registered")
        old = (task.slice_ns, task.period_ns)
        current = task.vcpu
        task.set_requirement(slice_ns, period_ns)
        others = [t for t in current.rt_tasks() if t is not task]
        if fits_on_vcpu(others, task, self.slack_ns):
            update = self._params_update(current, others + [task])
            increase = task.bandwidth > 0 and (
                update[1] * current.period_ns > current.budget_ns * update[2]
            )
            if increase:
                if self._request_increase([update]):
                    return current
                task.set_requirement(*old)
                raise AdmissionError(
                    f"host rejected increased bandwidth for {task.name}", level="host"
                )
            self._notify_decrease([update])
            return current
        # Must move to another VCPU: INC_DEC_BW over both VCPUs at once.
        # CPU hotplug provides a fresh VCPU when none has room (§3.2).
        target = self._first_fit(task, exclude=current)
        if target is None and fits_on_vcpu([], task, self.slack_ns):
            target = self.vm.hotplug_vcpu()
        if target is not None:
            updates = [
                self._params_update(target, target.rt_tasks() + [task]),
                self._decrease_update(current, others),
            ]
            if self._request_increase(updates):
                target.pin_task(task)
                return target
            task.set_requirement(*old)
            raise AdmissionError(
                f"host rejected INC_DEC_BW move of {task.name}", level="host"
            )
        placed = self._try_reshuffle(new_task=None)
        if placed is not None and fits_on_vcpu(
            [t for t in task.vcpu.rt_tasks() if t is not task], task, self.slack_ns
        ):
            return self.adjust(task, slice_ns, period_ns)
        task.set_requirement(*old)
        raise AdmissionError(
            f"VM {self.vm.name} cannot satisfy new requirement of {task.name}",
            level="guest",
        )

    def _decrease_update(self, vcpu: VCPU, tasks: List[Task]) -> ParamUpdate:
        if tasks:
            return self._params_update(vcpu, tasks)
        return (vcpu, 0, max(vcpu.period_ns, 1))

    # -- unregistration (paper §3.2 case 4) ----------------------------------------

    def unregister(self, task: Task) -> None:
        """Remove *task* and release its bandwidth (DEC_BW)."""
        vcpu = task.vcpu
        if vcpu is None:
            raise ConfigurationError(f"task {task.name} is not registered")
        vcpu.unpin_task(task)
        if task.kind is TaskKind.BACKGROUND:
            return
        remaining = vcpu.rt_tasks()
        self._notify_decrease([self._decrease_update(vcpu, remaining)])

    # -- reshuffling and hotplug ------------------------------------------------

    def _try_reshuffle(self, new_task: Optional[Task]) -> Optional[VCPU]:
        """Re-pack all RTAs first-fit-decreasing; returns new_task's VCPU.

        Only attempted when registration/adjustment fails with fragmented
        bandwidth (paper §3.2).  The whole new layout is submitted to the
        host as a single atomic update batch.
        """
        tasks = [t for v in self.vm.vcpus for t in v.rt_tasks()]
        if new_task is not None:
            tasks.append(new_task)
        layout = self._pack(tasks, len(self.vm.vcpus))
        if layout is None:
            return None
        updates: List[ParamUpdate] = []
        for vcpu, assigned in zip(self.vm.vcpus, layout):
            if assigned:
                updates.append(self._params_update(vcpu, assigned))
            else:
                updates.append(self._decrease_update(vcpu, []))
        if not self._request_increase(updates):
            return None
        target = None
        for vcpu, assigned in zip(self.vm.vcpus, layout):
            for t in assigned:
                vcpu.pin_task(t)
                if t is new_task:
                    target = vcpu
        return target if new_task is not None else self.vm.vcpus[0]

    def _pack(self, tasks: List[Task], bins: int) -> Optional[List[List[Task]]]:
        """First-fit-decreasing bin packing; None when it does not fit."""
        layout: List[List[Task]] = [[] for _ in range(bins)]
        for task in sorted(tasks, key=lambda t: (-t.bandwidth, t.seq)):
            placed = False
            for assigned in layout:
                if fits_on_vcpu(assigned, task, self.slack_ns):
                    assigned.append(task)
                    placed = True
                    break
            if not placed:
                return None
        return layout

    def _try_hotplug(self, task: Task) -> Optional[VCPU]:
        """Add a VCPU online (paper §3.2) and place *task* on it."""
        vcpu = self.vm.hotplug_vcpu()
        if vcpu is None:
            return None
        update = self._params_update(vcpu, [task])
        if self._request_increase([update]):
            vcpu.pin_task(task)
            return vcpu
        return None

    # -- dispatch hooks -----------------------------------------------------------

    def pick_job(self, vcpu: VCPU, now: int) -> Optional[Job]:
        """pEDF dispatch: delegate to the VCPU's local EDF queue."""
        return vcpu.pick_job(now)

    def on_vcpu_descheduled(self, vcpu: VCPU) -> None:
        """pEDF has no cross-VCPU state to release."""

    def rt_bandwidth_by_vcpu(self) -> Dict[str, float]:
        """Diagnostic: per-VCPU pinned RT bandwidth."""
        return {v.name: float(v.rt_bandwidth()) for v in self.vm.vcpus}
