"""Virtual CPUs.

A VCPU is the unit the host scheduler reasons about.  It carries:

- the set of guest tasks currently pinned to it (pEDF pins tasks),
- host-visible scheduling parameters (budget, period — i.e. bandwidth),
- the local EDF dispatch logic that chooses which pending job runs when
  the host gives this VCPU physical CPU time.

The host never looks inside the task list; under RTVirt it sees only the
parameters and the next-earliest-deadline word the guest publishes via
shared memory, which is the paper's minimal-information-sharing design.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import List, Optional

from ..simcore.errors import ConfigurationError
from ..telemetry import events as T
from .task import Job, Task, TaskKind


class VCPU:
    """One virtual CPU of a VM."""

    _ids = itertools.count()

    def __init__(self, vm, index: int) -> None:
        self.vm = vm
        self.index = index
        # Provisional process-global uid; machine attach replaces it
        # with a dense engine-scoped one (see Machine.attach_vm) so
        # recorded telemetry is reproducible across processes.
        self.uid = next(VCPU._ids)
        self.uid_final = False
        self.name = f"{vm.name}.vcpu{index}"
        #: Idle-report event name, formatted once instead of per report.
        self.idle_name = f"idle:{self.name}"
        #: Reservation-piece event name (DP-WRAP), formatted once instead
        #: of per slice — the layout arms one event per piece.
        self.piece_name = f"piece:{self.name}"
        self.tasks: List[Task] = []
        # Host-visible reservation parameters (set via the cross-layer
        # interface under RTVirt, or statically for the baselines).
        self.budget_ns: int = 0
        self.period_ns: int = 0
        #: True once the host scheduler has admitted this VCPU.
        self.admitted = False
        #: Pending jobs across pinned tasks (kept exact by the task layer
        #: so :attr:`has_work` is O(1) on the scheduler hot path).
        self._pending_jobs = 0

    # -- host-visible parameters --------------------------------------------

    @property
    def bandwidth(self) -> Fraction:
        """Reserved bandwidth budget/period (0 when unconfigured)."""
        if self.period_ns <= 0:
            return Fraction(0)
        return Fraction(self.budget_ns, self.period_ns)

    def set_params(self, budget_ns: int, period_ns: int) -> None:
        """Set the host-visible (budget, period) reservation."""
        if budget_ns < 0 or period_ns <= 0:
            raise ConfigurationError(
                f"{self.name}: invalid params budget={budget_ns} period={period_ns}"
            )
        self.budget_ns = budget_ns
        self.period_ns = period_ns
        machine = getattr(self.vm, "machine", None)
        if machine is not None and machine.bus.has_subscribers(T.VCPU_PARAMS):
            machine.bus.publish(
                T.VCPU_PARAMS,
                T.VcpuParamsEvent(
                    machine.engine.now, self.name, self.uid, budget_ns, period_ns
                ),
            )

    # -- task management ------------------------------------------------------

    def pin_task(self, task: Task) -> None:
        """Pin *task* to this VCPU (pEDF placement)."""
        if task.vcpu is not None:
            task.vcpu.unpin_task(task)
        task.vcpu = self
        self.tasks.append(task)
        self._pending_jobs += len(task.pending)

    def unpin_task(self, task: Task) -> None:
        """Remove *task* from this VCPU."""
        self.tasks.remove(task)
        task.vcpu = None
        self._pending_jobs -= len(task.pending)

    def rt_tasks(self) -> List[Task]:
        """Pinned tasks that have deadlines (periodic or sporadic)."""
        return [t for t in self.tasks if t.kind is not TaskKind.BACKGROUND]

    def rt_bandwidth(self) -> Fraction:
        """Sum of pinned real-time tasks' required bandwidths."""
        return sum((t.bandwidth for t in self.rt_tasks()), Fraction(0))

    # -- dispatch --------------------------------------------------------------

    def pick_job(self, now: int) -> Optional[Job]:
        """EDF dispatch: the pending job with the earliest deadline.

        Jobs without deadlines (background) run only when no deadline job
        is pending.  Ties break on task registration order then job index,
        keeping the simulation deterministic.
        """
        best: Optional[Job] = None
        best_key = None
        for task in self.tasks:
            job = task.head_job()
            if job is None:
                continue
            key = (
                0 if job.deadline is not None else 1,
                job.deadline if job.deadline is not None else 0,
                task.seq,
                job.index,
            )
            if best_key is None or key < best_key:
                best = job
                best_key = key
        return best

    @property
    def has_work(self) -> bool:
        """True when any pinned task has a pending job.  O(1)."""
        return self._pending_jobs > 0

    @property
    def has_rt_work(self) -> bool:
        """True when a deadline-bearing job is pending."""
        return any(t.has_work for t in self.rt_tasks())

    # -- cross-layer information ------------------------------------------------

    def next_earliest_deadline(self, now: int) -> Optional[int]:
        """The value the guest publishes to the host via shared memory.

        The minimum over (a) deadlines of already-released jobs and
        (b) the worst-case earliest deadline of each task's next job
        (paper §3.3: exact for periodic tasks, the minimum-inter-arrival
        bound for sporadic tasks).  None when no RT task is pinned.
        """
        best: Optional[int] = None
        for task in self.tasks:
            if task.kind is TaskKind.BACKGROUND:
                continue
            pending = task.earliest_pending_deadline()
            if pending is not None and (best is None or pending < best):
                best = pending
            upcoming = task.next_worst_case_deadline(now)
            if upcoming is not None and (best is None or upcoming < best):
                best = upcoming
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCPU {self.name} bw={self.bandwidth} tasks={len(self.tasks)}>"
