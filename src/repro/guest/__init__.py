"""Guest OS model: tasks, VCPUs, guest schedulers, the VM abstraction."""

from .gedf import GEDFGuestScheduler
from .params import VCPUParams, derive_vcpu_params, fits_on_vcpu
from .pedf import PEDFGuestScheduler
from .port import CrossLayerPort, LocalPort, ParamUpdate
from .syscall import (
    nr_vcpus,
    sched_adjust,
    sched_getattr,
    sched_setattr,
    sched_unregister,
)
from .task import Job, Task, TaskKind, make_background_task
from .vcpu import VCPU
from .vm import VM

__all__ = [
    "Job",
    "Task",
    "TaskKind",
    "make_background_task",
    "VCPU",
    "VM",
    "VCPUParams",
    "derive_vcpu_params",
    "fits_on_vcpu",
    "PEDFGuestScheduler",
    "GEDFGuestScheduler",
    "CrossLayerPort",
    "LocalPort",
    "ParamUpdate",
    "sched_setattr",
    "sched_adjust",
    "sched_unregister",
    "sched_getattr",
    "nr_vcpus",
]
