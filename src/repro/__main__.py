"""``python -m repro`` — the experiment runner CLI."""

import sys

from .cli import main

sys.exit(main())
