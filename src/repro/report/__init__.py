"""Terminal rendering and trace-export helpers for the paper's figures."""

from .ascii import render_cdf, render_gantt, sparkline
from .export import export_chrome_trace, trace_to_chrome_events

__all__ = [
    "sparkline",
    "render_cdf",
    "render_gantt",
    "export_chrome_trace",
    "trace_to_chrome_events",
]
