"""Trace export to the Chrome tracing (Perfetto) JSON format.

Any captured :class:`~repro.simcore.trace.Trace` can be dumped to a
``.json`` loadable in ``chrome://tracing`` / https://ui.perfetto.dev:
PCPUs become rows, execution segments become duration events coloured
by VM, and point events (switches, migrations, completions) become
instant events.  Injected faults (``kind == "fault"`` trace events,
recorded by the machine and :mod:`repro.faults`) land as global instant
events on a dedicated ``faults`` track so the timeline shows exactly
when the system was hit.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..simcore.errors import ConfigurationError
from ..simcore.trace import Trace

#: Row (chrome-tracing tid) holding injected-fault instant events; far
#: above any realistic PCPU index so the track never collides.
FAULT_TRACK_TID = 999


def trace_to_chrome_events(trace: Trace, process_name: str = "host") -> List[Dict]:
    """Convert a trace to chrome-tracing event dicts (times in µs)."""
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    pcpus = sorted({s.pcpu for s in trace.segments})
    if any(e.kind == "fault" for e in trace.events):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": FAULT_TRACK_TID,
                "args": {"name": "faults"},
            }
        )
    for pcpu in pcpus:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": pcpu,
                "args": {"name": f"pcpu{pcpu}"},
            }
        )
    for segment in trace.segments:
        events.append(
            {
                "name": segment.task or segment.vcpu,
                "cat": segment.vcpu.split(".")[0],
                "ph": "X",
                "pid": 0,
                "tid": segment.pcpu,
                "ts": segment.start / 1_000.0,
                "dur": segment.duration / 1_000.0,
                "args": {"vcpu": segment.vcpu},
            }
        )
    for event in trace.events:
        if event.kind == "switch":
            pcpu, vcpu, migrated = event.detail
            events.append(
                {
                    "name": "migration" if migrated else "switch",
                    "cat": "sched",
                    "ph": "i",
                    "pid": 0,
                    "tid": pcpu,
                    "ts": event.time / 1_000.0,
                    "s": "t",
                    "args": {"vcpu": vcpu},
                }
            )
        elif event.kind == "fault":
            fault_kind = event.detail[0] if event.detail else "fault"
            events.append(
                {
                    "name": f"fault:{fault_kind}",
                    "cat": "faults",
                    "ph": "i",
                    "pid": 0,
                    "tid": FAULT_TRACK_TID,
                    "ts": event.time / 1_000.0,
                    "s": "g",
                    "args": {"detail": [str(d) for d in event.detail[1:]]},
                }
            )
        elif event.kind == "complete":
            events.append(
                {
                    "name": f"complete:{event.detail[0]}",
                    "cat": "jobs",
                    "ph": "i",
                    "pid": 0,
                    "tid": 0,
                    "ts": event.time / 1_000.0,
                    "s": "g",
                    "args": {"job": event.detail[1]},
                }
            )
    return events


def export_chrome_trace(
    trace: Trace, path: str, process_name: str = "host"
) -> int:
    """Write the trace to *path*; returns the number of events written."""
    if not path.endswith(".json"):
        raise ConfigurationError("chrome traces are .json files")
    events = trace_to_chrome_events(trace, process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)
