"""Trace export to the Chrome tracing (Perfetto) JSON format.

Any captured :class:`~repro.simcore.trace.Trace` can be dumped to a
``.json`` loadable in ``chrome://tracing`` / https://ui.perfetto.dev:
PCPUs become rows, execution segments become duration events coloured
by VM, and point events (switches, migrations, completions) become
instant events.  Injected faults (``kind == "fault"`` trace events,
recorded by the machine and :mod:`repro.faults`) land as global instant
events on a dedicated ``faults`` track so the timeline shows exactly
when the system was hit.

Two paths produce identical output:

- :func:`trace_to_chrome_events` converts an already-captured trace
  post-hoc;
- :class:`ChromeTraceExporter` subscribes to a
  :class:`~repro.telemetry.bus.TelemetryBus` and streams the chrome
  dicts as the simulation runs, so a full-fidelity timeline never needs
  an unbounded in-memory :class:`Trace`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..simcore.errors import ConfigurationError
from ..simcore.trace import Trace
from ..telemetry import events as T

#: Row (chrome-tracing tid) holding injected-fault instant events; far
#: above any realistic PCPU index so the track never collides.
FAULT_TRACK_TID = 999


# -- per-event dict builders (shared by the post-hoc and streaming paths) ------------


def _process_meta(process_name: str) -> Dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": process_name},
    }


def _fault_track_meta() -> Dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": FAULT_TRACK_TID,
        "args": {"name": "faults"},
    }


def _pcpu_track_meta(pcpu: int) -> Dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": pcpu,
        "args": {"name": f"pcpu{pcpu}"},
    }


def _segment_dict(pcpu: int, vcpu: str, task: Optional[str], start: int, end: int) -> Dict:
    return {
        "name": task or vcpu,
        "cat": vcpu.split(".")[0],
        "ph": "X",
        "pid": 0,
        "tid": pcpu,
        "ts": start / 1_000.0,
        "dur": (end - start) / 1_000.0,
        "args": {"vcpu": vcpu},
    }


def _switch_dict(time: int, pcpu: int, vcpu: str, migrated: bool) -> Dict:
    return {
        "name": "migration" if migrated else "switch",
        "cat": "sched",
        "ph": "i",
        "pid": 0,
        "tid": pcpu,
        "ts": time / 1_000.0,
        "s": "t",
        "args": {"vcpu": vcpu},
    }


def _fault_dict(time: int, fault_kind: str, detail) -> Dict:
    return {
        "name": f"fault:{fault_kind}",
        "cat": "faults",
        "ph": "i",
        "pid": 0,
        "tid": FAULT_TRACK_TID,
        "ts": time / 1_000.0,
        "s": "g",
        "args": {"detail": [str(d) for d in detail]},
    }


def _complete_dict(time: int, task: str, job) -> Dict:
    return {
        "name": f"complete:{task}",
        "cat": "jobs",
        "ph": "i",
        "pid": 0,
        "tid": 0,
        "ts": time / 1_000.0,
        "s": "g",
        "args": {"job": job},
    }


def trace_to_chrome_events(trace: Trace, process_name: str = "host") -> List[Dict]:
    """Convert a trace to chrome-tracing event dicts (times in µs)."""
    events: List[Dict] = [_process_meta(process_name)]
    pcpus = sorted({s.pcpu for s in trace.segments})
    if any(e.kind == "fault" for e in trace.events):
        events.append(_fault_track_meta())
    for pcpu in pcpus:
        events.append(_pcpu_track_meta(pcpu))
    for segment in trace.segments:
        events.append(
            _segment_dict(
                segment.pcpu, segment.vcpu, segment.task, segment.start, segment.end
            )
        )
    for event in trace.events:
        if event.kind == "switch":
            pcpu, vcpu, migrated = event.detail
            events.append(_switch_dict(event.time, pcpu, vcpu, migrated))
        elif event.kind == "fault":
            fault_kind = event.detail[0] if event.detail else "fault"
            events.append(_fault_dict(event.time, fault_kind, event.detail[1:]))
        elif event.kind == "complete":
            events.append(
                _complete_dict(event.time, event.detail[0], event.detail[1])
            )
    return events


def export_chrome_trace(
    trace: Trace, path: str, process_name: str = "host"
) -> int:
    """Write the trace to *path*; returns the number of events written."""
    if not path.endswith(".json"):
        raise ConfigurationError("chrome traces are .json files")
    events = trace_to_chrome_events(trace, process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


class ChromeTraceExporter:
    """Streams telemetry events straight into chrome-tracing dicts.

    Subscribes to the machine's :class:`~repro.telemetry.bus.TelemetryBus`
    and builds the chrome event list online — the same records
    :func:`trace_to_chrome_events` would produce from a captured trace
    (metadata rows are synthesised at write time from the PCPUs/faults
    actually seen).  Useful when a run is too long to keep a full
    :class:`Trace` in memory but a timeline is still wanted.
    """

    def __init__(self, process_name: str = "host") -> None:
        self.process_name = process_name
        self._events: List[Dict] = []
        self._pcpus = set()
        self._saw_fault = False
        self._unsubscribe = None

    # -- wiring ------------------------------------------------------------------

    def attach(self, bus) -> "ChromeTraceExporter":
        """Subscribe to *bus* (detaching any previous subscription)."""
        self.detach()
        cancels = [
            bus.subscribe(T.SEGMENT_END, self._on_segment),
            bus.subscribe(T.CONTEXT_SWITCH, self._on_switch),
            bus.subscribe(T.JOB_COMPLETE, self._on_complete),
            bus.subscribe(T.FAULT_INJECTED, self._on_fault),
            bus.subscribe(T.FAULT_RECOVERED, self._on_fault),
        ]

        def unsubscribe() -> None:
            for cancel in cancels:
                cancel()

        self._unsubscribe = unsubscribe
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- subscribers -------------------------------------------------------------

    def _on_segment(self, event: T.SegmentEndEvent) -> None:
        if event.end <= event.start:
            return  # zero-length charge; the post-hoc path drops it too
        self._pcpus.add(event.pcpu)
        self._events.append(
            _segment_dict(event.pcpu, event.vcpu, event.task, event.start, event.end)
        )

    def _on_switch(self, event: T.ContextSwitchEvent) -> None:
        if event.vcpu is None:
            return  # idle transition; not a legacy "switch" record
        self._pcpus.add(event.pcpu)
        self._events.append(
            _switch_dict(event.time, event.pcpu, event.vcpu, event.migrated)
        )

    def _on_complete(self, event: T.JobCompleteEvent) -> None:
        self._events.append(_complete_dict(event.time, event.task, event.job))

    def _on_fault(self, event) -> None:
        self._saw_fault = True
        self._events.append(_fault_dict(event.time, event.fault, event.detail))

    # -- output ------------------------------------------------------------------

    def events(self) -> List[Dict]:
        """Metadata rows plus every streamed event, in arrival order."""
        header: List[Dict] = [_process_meta(self.process_name)]
        if self._saw_fault:
            header.append(_fault_track_meta())
        for pcpu in sorted(self._pcpus):
            header.append(_pcpu_track_meta(pcpu))
        return header + self._events

    def write(self, path: str) -> int:
        """Write the streamed timeline to *path*; returns event count."""
        if not path.endswith(".json"):
            raise ConfigurationError("chrome traces are .json files")
        events = self.events()
        with open(path, "w") as handle:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        return len(events)


def export_profile(profiler, path: str) -> dict:
    """Write a :class:`~repro.telemetry.profile.SimProfiler` snapshot.

    Plain sorted JSON (per-event-kind handler counts/wall-time and
    per-phase engine time) — the self-profiler's export path; returns
    the snapshot that was written.
    """
    if not path.endswith(".json"):
        raise ConfigurationError("profile exports are .json files")
    snapshot = profiler.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    return snapshot
