"""Terminal rendering of the paper's figures.

Pure-text renderers (no plotting dependencies) used by the examples and
the bench output: latency CDFs (Figure 5), allocation sparklines
(Figure 4) and schedule Gantt charts (Figure 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..simcore.errors import ConfigurationError
from ..simcore.trace import Trace

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60, peak: Optional[float] = None) -> str:
    """Compress *values* into a block-character strip of at most *width*."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if not values:
        return ""
    if peak is None:
        peak = max(values)
    peak = max(peak, 1e-12)
    step = max(1, len(values) // width)
    cells = []
    for i in range(0, len(values), step):
        chunk = values[i : i + step]
        level = min(1.0, (sum(chunk) / len(chunk)) / peak)
        cells.append(_BLOCKS[round(level * (len(_BLOCKS) - 1))])
    return "".join(cells)


def render_cdf(
    curves: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "latency (µs)",
    slo: Optional[float] = None,
) -> str:
    """Plot several CDF curves on a log-x character canvas (Figure 5).

    *curves* maps a series name to (value, cumulative_fraction) points,
    as produced by :meth:`repro.metrics.latency.LatencyRecorder.cdf_usec`.
    """
    import math

    if not curves or all(not pts for pts in curves.values()):
        return "(no data)"
    xs = [x for pts in curves.values() for x, _ in pts if x > 0]
    if slo:
        xs.append(slo)
    lo, hi = math.log10(min(xs)), math.log10(max(xs))
    if hi - lo < 1e-9:
        hi = lo + 1.0

    def col(x: float) -> int:
        return min(width - 1, max(0, round((math.log10(max(x, 1e-12)) - lo) / (hi - lo) * (width - 1))))

    canvas = [[" "] * width for _ in range(height)]
    if slo is not None:
        c = col(slo)
        for r in range(height):
            canvas[r][c] = "|"
    markers = "*o+x#@"
    legend = []
    for idx, (name, pts) in enumerate(curves.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark} {name}")
        for x, y in pts:
            r = height - 1 - min(height - 1, round(y * (height - 1)))
            canvas[r][col(x)] = mark
    lines = ["1.0 ┤" + "".join(canvas[0])]
    for r in range(1, height - 1):
        lines.append("    │" + "".join(canvas[r]))
    lines.append("0.0 ┤" + "".join(canvas[height - 1]))
    lines.append("    └" + "─" * width)
    footer = f"     {10 ** lo:.0f} .. {10 ** hi:.0f} {x_label} (log)"
    if slo is not None:
        footer += f"   | = SLO {slo:g}"
    lines.append(footer)
    lines.append("     " + "   ".join(legend))
    return "\n".join(lines)


def render_gantt(
    trace: Trace,
    start: int,
    end: int,
    width: int = 72,
    lanes: Optional[Sequence[str]] = None,
) -> str:
    """Character Gantt chart of who ran on each PCPU (Figure 1's style).

    Each PCPU is one row; each column a time bucket, labelled with the
    first letter of the VCPU that ran the majority of the bucket.
    """
    if end <= start:
        raise ConfigurationError("empty time window")
    pcpus = sorted({s.pcpu for s in trace.segments})
    if not pcpus:
        return "(no execution)"
    bucket = max(1, (end - start) // width)
    names = lanes if lanes is not None else sorted({s.vcpu for s in trace.segments})
    letters = {name: chr(ord("A") + i % 26) for i, name in enumerate(names)}
    lines = []
    for pcpu in pcpus:
        row = []
        for t in range(start, end, bucket):
            best_name, best_time = None, 0
            for name in names:
                used = sum(
                    min(s.end, t + bucket) - max(s.start, t)
                    for s in trace.segments
                    if s.pcpu == pcpu
                    and s.vcpu == name
                    and s.end > t
                    and s.start < t + bucket
                )
                if used > best_time:
                    best_name, best_time = name, used
            row.append(letters[best_name] if best_name else "·")
        lines.append(f"pcpu{pcpu} |{''.join(row)}|")
    key = "  ".join(f"{letter}={name}" for name, letter in letters.items())
    lines.append(f"key: {key}")
    return "\n".join(lines)
