"""Terminal rendering of the paper's figures.

Pure-text renderers (no plotting dependencies) used by the examples and
the bench output: latency CDFs (Figure 5), allocation sparklines
(Figure 4), schedule Gantt charts (Figure 1), and the ``repro
explain`` views — deadline-miss blame tables and per-job causal
timelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..simcore.errors import ConfigurationError
from ..simcore.trace import Trace

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60, peak: Optional[float] = None) -> str:
    """Compress *values* into a block-character strip of at most *width*."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if not values:
        return ""
    if peak is None:
        peak = max(values)
    peak = max(peak, 1e-12)
    step = max(1, len(values) // width)
    cells = []
    for i in range(0, len(values), step):
        chunk = values[i : i + step]
        level = min(1.0, (sum(chunk) / len(chunk)) / peak)
        cells.append(_BLOCKS[round(level * (len(_BLOCKS) - 1))])
    return "".join(cells)


def render_cdf(
    curves: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "latency (µs)",
    slo: Optional[float] = None,
) -> str:
    """Plot several CDF curves on a log-x character canvas (Figure 5).

    *curves* maps a series name to (value, cumulative_fraction) points,
    as produced by :meth:`repro.metrics.latency.LatencyRecorder.cdf_usec`.
    """
    import math

    if not curves or all(not pts for pts in curves.values()):
        return "(no data)"
    xs = [x for pts in curves.values() for x, _ in pts if x > 0]
    if slo:
        xs.append(slo)
    lo, hi = math.log10(min(xs)), math.log10(max(xs))
    if hi - lo < 1e-9:
        hi = lo + 1.0

    def col(x: float) -> int:
        return min(width - 1, max(0, round((math.log10(max(x, 1e-12)) - lo) / (hi - lo) * (width - 1))))

    canvas = [[" "] * width for _ in range(height)]
    if slo is not None:
        c = col(slo)
        for r in range(height):
            canvas[r][c] = "|"
    markers = "*o+x#@"
    legend = []
    for idx, (name, pts) in enumerate(curves.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark} {name}")
        for x, y in pts:
            r = height - 1 - min(height - 1, round(y * (height - 1)))
            canvas[r][col(x)] = mark
    lines = ["1.0 ┤" + "".join(canvas[0])]
    for r in range(1, height - 1):
        lines.append("    │" + "".join(canvas[r]))
    lines.append("0.0 ┤" + "".join(canvas[height - 1]))
    lines.append("    └" + "─" * width)
    footer = f"     {10 ** lo:.0f} .. {10 ** hi:.0f} {x_label} (log)"
    if slo is not None:
        footer += f"   | = SLO {slo:g}"
    lines.append(footer)
    lines.append("     " + "   ".join(legend))
    return "\n".join(lines)


def render_gantt(
    trace: Trace,
    start: int,
    end: int,
    width: int = 72,
    lanes: Optional[Sequence[str]] = None,
) -> str:
    """Character Gantt chart of who ran on each PCPU (Figure 1's style).

    Each PCPU is one row; each column a time bucket, labelled with the
    first letter of the VCPU that ran the majority of the bucket.
    """
    if end <= start:
        raise ConfigurationError("empty time window")
    pcpus = sorted({s.pcpu for s in trace.segments})
    if not pcpus:
        return "(no execution)"
    bucket = max(1, (end - start) // width)
    names = lanes if lanes is not None else sorted({s.vcpu for s in trace.segments})
    letters = {name: chr(ord("A") + i % 26) for i, name in enumerate(names)}
    lines = []
    for pcpu in pcpus:
        row = []
        for t in range(start, end, bucket):
            best_name, best_time = None, 0
            for name in names:
                used = sum(
                    min(s.end, t + bucket) - max(s.start, t)
                    for s in trace.segments
                    if s.pcpu == pcpu
                    and s.vcpu == name
                    and s.end > t
                    and s.start < t + bucket
                )
                if used > best_time:
                    best_name, best_time = name, used
            row.append(letters[best_name] if best_name else "·")
        lines.append(f"pcpu{pcpu} |{''.join(row)}|")
    key = "  ".join(f"{letter}={name}" for name, letter in letters.items())
    lines.append(f"key: {key}")
    return "\n".join(lines)


def render_blame_table(snapshot: Dict, width: int = 24) -> str:
    """Deadline-miss blame table from a ``BlameReport.snapshot()`` dict.

    One row per cause, ranked by lost time, with a share bar so the
    dominant cause is visible at a glance.
    """
    observed = snapshot.get("observed", 0)
    explained = snapshot.get("explained", 0)
    per_cause = snapshot.get("per_cause", {})
    header = f"deadline-miss blame ({explained}/{observed} misses explained):"
    if not per_cause:
        return header + "\n  (no misses)"
    total_lost = sum(entry["lost_ns"] for entry in per_cause.values())
    lines = [header]
    lines.append(f"  {'cause':<20} {'misses':>6} {'lost(ms)':>10}  share")
    ranked = sorted(
        per_cause.items(), key=lambda item: (-item[1]["lost_ns"], item[0])
    )
    for cause, entry in ranked:
        share = entry["lost_ns"] / total_lost if total_lost else 0.0
        bar = "█" * max(1 if entry["lost_ns"] else 0, round(share * width))
        lines.append(
            f"  {cause:<20} {entry['misses']:>6} "
            f"{entry['lost_ns'] / 1e6:>10.3f}  {bar} {share * 100:.0f}%"
        )
    return "\n".join(lines)


def _ms(time_ns: int) -> str:
    return f"{time_ns / 1e6:.3f}ms"


def render_span_timeline(span, lost: Optional[Dict[str, int]] = None) -> str:
    """Causal timeline of one finalized job span (``repro explain --job``).

    *span* is a :class:`repro.telemetry.spans.Span` (duck-typed: the
    report layer stays import-free of telemetry internals); *lost* is
    the optional per-cause blame of its miss.
    """
    if span.incomplete:
        verdict = f"INCOMPLETE (deadline {'missed' if span.missed else 'pending'})"
    elif span.missed:
        verdict = f"MISS (+{_ms(span.tardiness)})"
    else:
        verdict = "met"
    lines = [
        f"{span.task}#{span.job} — released {_ms(span.release)}, "
        f"deadline {_ms(span.deadline)}: {verdict}"
    ]
    lines.append(f"  {_ms(span.release):>12}  release (vcpu {span.vcpu or '?'})")
    if span.enqueue_time is not None:
        lines.append(
            f"  {_ms(span.enqueue_time):>12}  enqueue [{span.enqueue_scope}]"
        )
    migrations = {t: (src, dst) for t, src, dst in span.guest_migrations}
    for start, end, bucket, vcpu, pcpu in span.intervals:
        where = ""
        if bucket == "run":
            where = f" on pcpu{pcpu} via {vcpu}"
        elif vcpu is not None:
            where = f" ({vcpu})"
        lines.append(
            f"  {_ms(start):>12}  {bucket:<10} {_ms(end - start):>10}{where}"
        )
        for t in sorted(migrations):
            if start <= t < end:
                src, dst = migrations[t]
                lines.append(
                    f"  {_ms(t):>12}  guest migration vcpu{src} → vcpu{dst}"
                )
    if span.end is not None:
        tail = "horizon" if span.incomplete else "complete"
        response = span.end - span.release
        lines.append(f"  {_ms(span.end):>12}  {tail} — response {_ms(response)}")
    if lost:
        parts = " · ".join(
            f"{cause} {_ms(ns)}"
            for cause, ns in sorted(lost.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"  blame: {parts}")
    return "\n".join(lines)
