"""Multi-host VM placement (paper §6).

*"Considering the availability of multiple hosts, RTVirt's VM admission
and scheduling process can be extended to optimize the placement of VMs
across different hosts, in addition to the placement of VCPUs across
different PCPUs on a single host."*

This module plans RT-VM placement over a cluster of RTVirt hosts using
the same exact-utilization admission each host enforces locally.  The
planner is analytical (it reasons over bandwidth demands); committed
placements can then be instantiated as per-host
:class:`~repro.core.system.RTVirtSystem` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..simcore.errors import AdmissionError, ConfigurationError


@dataclass(frozen=True)
class VMDemand:
    """A VM's aggregate RT bandwidth demand (sum of its VCPU grants)."""

    name: str
    bandwidth: Fraction

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise ConfigurationError(f"{self.name}: negative bandwidth demand")


@dataclass
class HostDescriptor:
    """One RTVirt host's capacity for placement planning."""

    name: str
    pcpu_count: int
    background_reserve: Fraction = Fraction(0)
    placed: List[VMDemand] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pcpu_count < 1:
            raise ConfigurationError(f"{self.name}: needs at least one PCPU")
        if not 0 <= self.background_reserve < self.pcpu_count:
            raise ConfigurationError(f"{self.name}: invalid background reserve")

    @property
    def capacity(self) -> Fraction:
        return Fraction(self.pcpu_count) - self.background_reserve

    @property
    def load(self) -> Fraction:
        return sum((vm.bandwidth for vm in self.placed), Fraction(0))

    @property
    def headroom(self) -> Fraction:
        return self.capacity - self.load

    def fits(self, vm: VMDemand) -> bool:
        return vm.bandwidth <= self.headroom


class ClusterPlanner:
    """Plans and tracks RT-VM placement across hosts.

    Policies:

    - ``worst_fit`` (default): place on the host with the most headroom,
      spreading load so later dynamic increases (INC_BW) are likely to be
      admitted locally without cross-host migration;
    - ``first_fit``: pack hosts in order, minimizing the number of hosts
      powered on;
    - ``best_fit``: tightest feasible host, leaving large contiguous
      headroom elsewhere.
    """

    POLICIES = ("worst_fit", "first_fit", "best_fit")

    def __init__(self, hosts: Sequence[HostDescriptor], policy: str = "worst_fit") -> None:
        if not hosts:
            raise ConfigurationError("a cluster needs at least one host")
        if policy not in self.POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; choose from {self.POLICIES}"
            )
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ConfigurationError("host names must be unique")
        self.hosts = list(hosts)
        self.policy = policy
        self.assignments: Dict[str, str] = {}  # vm name -> host name

    # -- placement ----------------------------------------------------------------

    def _candidate(self, vm: VMDemand) -> Optional[HostDescriptor]:
        feasible = [h for h in self.hosts if h.fits(vm)]
        if not feasible:
            return None
        if self.policy == "worst_fit":
            return max(feasible, key=lambda h: (h.headroom, -self.hosts.index(h)))
        if self.policy == "best_fit":
            return min(feasible, key=lambda h: (h.headroom, self.hosts.index(h)))
        return feasible[0]  # first_fit

    def place(self, vm: VMDemand) -> HostDescriptor:
        """Place one VM; raises :class:`AdmissionError` when nothing fits."""
        if vm.name in self.assignments:
            raise ConfigurationError(f"VM {vm.name} is already placed")
        host = self._candidate(vm)
        if host is None:
            raise AdmissionError(
                f"no host can admit {vm.name} "
                f"(demand {float(vm.bandwidth):.3f} CPUs)",
                level="host",
            )
        host.placed.append(vm)
        self.assignments[vm.name] = host.name
        return host

    def place_all(self, vms: Sequence[VMDemand]) -> Dict[str, str]:
        """Place a batch (largest demand first); all-or-nothing."""
        ordered = sorted(vms, key=lambda v: (-v.bandwidth, v.name))
        placed: List[VMDemand] = []
        try:
            for vm in ordered:
                self.place(vm)
                placed.append(vm)
        except AdmissionError:
            for vm in placed:
                self.remove(vm.name)
            raise
        return {vm.name: self.assignments[vm.name] for vm in vms}

    def remove(self, vm_name: str) -> None:
        """A VM left the cluster; release its bandwidth."""
        host_name = self.assignments.pop(vm_name, None)
        if host_name is None:
            raise ConfigurationError(f"VM {vm_name} is not placed")
        host = self.host(host_name)
        host.placed = [vm for vm in host.placed if vm.name != vm_name]

    def host(self, name: str) -> HostDescriptor:
        for host in self.hosts:
            if host.name == name:
                return host
        raise ConfigurationError(f"unknown host {name}")

    def host_of(self, vm_name: str) -> HostDescriptor:
        return self.host(self.assignments[vm_name])

    # -- dynamic changes ---------------------------------------------------------------

    def grow(self, vm_name: str, new_bandwidth: Fraction) -> Tuple[HostDescriptor, bool]:
        """A VM's demand increased (its guest issued INC_BW).

        Returns (host, migrated): admitted in place when the current host
        has headroom, otherwise moved to a feasible host (a live
        migration the caller must cost — see
        :mod:`repro.placement.migration`).  Raises when no host fits.
        """
        host = self.host_of(vm_name)
        current = next(vm for vm in host.placed if vm.name == vm_name)
        delta = new_bandwidth - current.bandwidth
        updated = VMDemand(vm_name, new_bandwidth)
        if delta <= host.headroom:
            host.placed[host.placed.index(current)] = updated
            return host, False
        self.remove(vm_name)
        try:
            new_host = self.place(updated)
        except AdmissionError:
            # Roll back to the original placement.
            self.host(host.name).placed.append(current)
            self.assignments[vm_name] = host.name
            raise
        return new_host, True

    # -- reporting ------------------------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        """Per-host load as a fraction of capacity."""
        return {h.name: float(h.load / h.capacity) if h.capacity else 0.0 for h in self.hosts}

    def imbalance(self) -> float:
        """Max minus min host utilization (0 = perfectly balanced)."""
        values = list(self.utilization().values())
        return max(values) - min(values)
