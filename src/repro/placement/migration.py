"""Live-migration cost modelling (paper §6).

*"Live VM migration can be considered to dynamically adjust VM
placement at runtime, but its overhead must be properly accounted
for"* — citing Wu & Zhao's performance model of pre-copy live
migration.  This module implements that model's standard form: iterative
pre-copy rounds whose volume shrinks geometrically with the ratio of
page-dirty rate to network bandwidth, followed by a stop-and-copy round
that determines the downtime.

The planner uses it to decide whether a rebalancing migration is safe
for a time-sensitive VM: the stop-and-copy downtime must fit inside the
VM's worst-case deadline slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..simcore.errors import ConfigurationError
from ..simcore.time import SEC


@dataclass(frozen=True)
class MigrationParams:
    """Inputs of the pre-copy model."""

    memory_bytes: int
    dirty_rate_bytes_per_s: int
    link_bytes_per_s: int
    max_rounds: int = 30
    stop_threshold_bytes: int = 64 * 1024 * 1024  # stop-copy when this small

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.link_bytes_per_s <= 0:
            raise ConfigurationError("memory size and link bandwidth must be positive")
        if self.dirty_rate_bytes_per_s < 0:
            raise ConfigurationError("dirty rate must be non-negative")
        if self.dirty_rate_bytes_per_s >= self.link_bytes_per_s:
            raise ConfigurationError(
                "pre-copy cannot converge: dirty rate >= link bandwidth"
            )


def safe_migration_params(
    memory_bytes: int,
    dirty_rate_bytes_per_s: int,
    link_bytes_per_s: int,
    max_rounds: int = 30,
    stop_threshold_bytes: int = 64 * 1024 * 1024,
) -> Optional[MigrationParams]:
    """Build :class:`MigrationParams`, or ``None`` when pre-copy cannot
    converge (``dirty_rate >= link_bandwidth``).

    Sweeps and planners should call this instead of the constructor so a
    non-converging configuration reads as "migration unsafe" rather than
    an exception unwinding the whole sweep.  Genuinely malformed inputs
    (non-positive memory or link) still raise.
    """
    if 0 <= dirty_rate_bytes_per_s and dirty_rate_bytes_per_s >= link_bytes_per_s > 0:
        return None
    return MigrationParams(
        memory_bytes=memory_bytes,
        dirty_rate_bytes_per_s=dirty_rate_bytes_per_s,
        link_bytes_per_s=link_bytes_per_s,
        max_rounds=max_rounds,
        stop_threshold_bytes=stop_threshold_bytes,
    )


@dataclass(frozen=True)
class MigrationEstimate:
    """Predicted cost of one live migration."""

    total_duration_ns: int
    downtime_ns: int
    rounds: int
    transferred_bytes: int


@dataclass(frozen=True)
class PrecopySchedule:
    """Exact per-round timing of one pre-copy migration.

    ``rounds`` holds ``(bytes, duration_ns)`` per iterative copy round;
    the final stop-and-copy round is ``(stop_copy_bytes, downtime_ns)``.
    All durations are integer nanoseconds (``bytes * SEC //
    link_bytes_per_s``) so a simulation can replay the rounds as engine
    events without float drift.
    """

    rounds: Tuple[Tuple[int, int], ...]
    stop_copy_bytes: int
    downtime_ns: int

    @property
    def total_duration_ns(self) -> int:
        return sum(ns for _, ns in self.rounds) + self.downtime_ns

    @property
    def transferred_bytes(self) -> int:
        return sum(b for b, _ in self.rounds) + self.stop_copy_bytes

    def estimate(self) -> MigrationEstimate:
        return MigrationEstimate(
            total_duration_ns=self.total_duration_ns,
            downtime_ns=self.downtime_ns,
            rounds=len(self.rounds) + 1,
            transferred_bytes=self.transferred_bytes,
        )


def precopy_schedule(params: MigrationParams) -> PrecopySchedule:
    """Pre-copy rounds until the residual dirty set is small, then stop-copy.

    Integer-exact: round durations are floor nanoseconds of
    ``bytes / link``, and the dirty set shrinks by the exact rational
    ratio ``dirty_rate / link`` (floored), so identical params always
    yield the identical schedule on every platform.
    """
    remaining = params.memory_bytes
    rounds: List[Tuple[int, int]] = []
    dirty = params.dirty_rate_bytes_per_s
    link = params.link_bytes_per_s
    while len(rounds) < params.max_rounds and remaining > params.stop_threshold_bytes:
        rounds.append((remaining, remaining * SEC // link))
        remaining = remaining * dirty // link
        if dirty == 0:
            remaining = 0
            break
    return PrecopySchedule(
        rounds=tuple(rounds),
        stop_copy_bytes=remaining,
        downtime_ns=remaining * SEC // link,
    )


def estimate_migration(params: MigrationParams) -> MigrationEstimate:
    """Predicted aggregate cost (see :func:`precopy_schedule` for rounds)."""
    return precopy_schedule(params).estimate()


def migration_safe_for(
    estimate: MigrationEstimate, slice_ns: int, period_ns: int
) -> bool:
    """Can a (slice, period) RT VM survive the stop-and-copy downtime?

    Conservative criterion: the downtime must fit in the VM's per-period
    slack (period − slice), so a job released just before the blackout
    can still finish by its deadline.
    """
    if period_ns <= 0 or slice_ns < 0:
        raise ConfigurationError("invalid VM parameters")
    return estimate.downtime_ns <= period_ns - slice_ns


def plan_rebalancing(
    planner,
    params: Optional[MigrationParams],
    target_imbalance: float = 0.2,
) -> List[str]:
    """Propose migrations reducing cluster imbalance below the target.

    Greedy: repeatedly move the smallest migration-safe VM from the most
    loaded host to the least loaded, while that improves imbalance.
    Returns the names of VMs to migrate, in order.  Only the *proposal*
    is computed; executing the migrations is the operator's call.

    *params* may be ``None`` (the :func:`safe_migration_params` signal
    that pre-copy cannot converge): every migration is then unsafe and
    the proposal is empty — a sweep over dirty rates degrades to
    "rebalancing off" instead of raising.
    """
    if params is None:
        return []
    proposals: List[str] = []
    estimate = estimate_migration(params)
    for _ in range(32):  # safety bound
        if planner.imbalance() <= target_imbalance:
            break
        utilization = planner.utilization()
        source = planner.host(max(utilization, key=utilization.get))
        sink = planner.host(min(utilization, key=utilization.get))
        movable = sorted(
            (vm for vm in source.placed if sink.fits(vm)),
            key=lambda vm: vm.bandwidth,
        )
        if not movable:
            break
        vm = movable[0]
        before = planner.imbalance()
        planner.remove(vm.name)
        sink.placed.append(vm)
        planner.assignments[vm.name] = sink.name
        if planner.imbalance() >= before:  # no improvement: undo and stop
            planner.remove(vm.name)
            source.placed.append(vm)
            planner.assignments[vm.name] = source.name
            break
        proposals.append(vm.name)
    return proposals
