"""Live-migration cost modelling (paper §6).

*"Live VM migration can be considered to dynamically adjust VM
placement at runtime, but its overhead must be properly accounted
for"* — citing Wu & Zhao's performance model of pre-copy live
migration.  This module implements that model's standard form: iterative
pre-copy rounds whose volume shrinks geometrically with the ratio of
page-dirty rate to network bandwidth, followed by a stop-and-copy round
that determines the downtime.

The planner uses it to decide whether a rebalancing migration is safe
for a time-sensitive VM: the stop-and-copy downtime must fit inside the
VM's worst-case deadline slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..simcore.errors import ConfigurationError
from ..simcore.time import SEC


@dataclass(frozen=True)
class MigrationParams:
    """Inputs of the pre-copy model."""

    memory_bytes: int
    dirty_rate_bytes_per_s: int
    link_bytes_per_s: int
    max_rounds: int = 30
    stop_threshold_bytes: int = 64 * 1024 * 1024  # stop-copy when this small

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.link_bytes_per_s <= 0:
            raise ConfigurationError("memory size and link bandwidth must be positive")
        if self.dirty_rate_bytes_per_s < 0:
            raise ConfigurationError("dirty rate must be non-negative")
        if self.dirty_rate_bytes_per_s >= self.link_bytes_per_s:
            raise ConfigurationError(
                "pre-copy cannot converge: dirty rate >= link bandwidth"
            )


@dataclass(frozen=True)
class MigrationEstimate:
    """Predicted cost of one live migration."""

    total_duration_ns: int
    downtime_ns: int
    rounds: int
    transferred_bytes: int


def estimate_migration(params: MigrationParams) -> MigrationEstimate:
    """Pre-copy rounds until the residual dirty set is small, then stop-copy."""
    remaining = params.memory_bytes
    transferred = 0
    duration_s = 0.0
    rounds = 0
    ratio = params.dirty_rate_bytes_per_s / params.link_bytes_per_s
    while rounds < params.max_rounds and remaining > params.stop_threshold_bytes:
        round_time = remaining / params.link_bytes_per_s
        transferred += remaining
        duration_s += round_time
        remaining = int(remaining * ratio)
        rounds += 1
        if ratio == 0:
            remaining = 0
            break
    downtime_s = remaining / params.link_bytes_per_s
    transferred += remaining
    duration_s += downtime_s
    return MigrationEstimate(
        total_duration_ns=round(duration_s * SEC),
        downtime_ns=round(downtime_s * SEC),
        rounds=rounds + 1,
        transferred_bytes=transferred,
    )


def migration_safe_for(
    estimate: MigrationEstimate, slice_ns: int, period_ns: int
) -> bool:
    """Can a (slice, period) RT VM survive the stop-and-copy downtime?

    Conservative criterion: the downtime must fit in the VM's per-period
    slack (period − slice), so a job released just before the blackout
    can still finish by its deadline.
    """
    if period_ns <= 0 or slice_ns < 0:
        raise ConfigurationError("invalid VM parameters")
    return estimate.downtime_ns <= period_ns - slice_ns


def plan_rebalancing(
    planner,
    params: MigrationParams,
    target_imbalance: float = 0.2,
) -> List[str]:
    """Propose migrations reducing cluster imbalance below the target.

    Greedy: repeatedly move the smallest migration-safe VM from the most
    loaded host to the least loaded, while that improves imbalance.
    Returns the names of VMs to migrate, in order.  Only the *proposal*
    is computed; executing the migrations is the operator's call.
    """
    proposals: List[str] = []
    estimate = estimate_migration(params)
    for _ in range(32):  # safety bound
        if planner.imbalance() <= target_imbalance:
            break
        utilization = planner.utilization()
        source = planner.host(max(utilization, key=utilization.get))
        sink = planner.host(min(utilization, key=utilization.get))
        movable = sorted(
            (vm for vm in source.placed if sink.fits(vm)),
            key=lambda vm: vm.bandwidth,
        )
        if not movable:
            break
        vm = movable[0]
        before = planner.imbalance()
        planner.remove(vm.name)
        sink.placed.append(vm)
        planner.assignments[vm.name] = sink.name
        if planner.imbalance() >= before:  # no improvement: undo and stop
            planner.remove(vm.name)
            source.placed.append(vm)
            planner.assignments[vm.name] = source.name
            break
        proposals.append(vm.name)
    return proposals
