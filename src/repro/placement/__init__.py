"""Multi-host placement and live-migration costing (paper §6 extensions)."""

from .cluster import ClusterPlanner, HostDescriptor, VMDemand
from .migration import (
    MigrationEstimate,
    MigrationParams,
    estimate_migration,
    migration_safe_for,
    plan_rebalancing,
)

__all__ = [
    "VMDemand",
    "HostDescriptor",
    "ClusterPlanner",
    "MigrationParams",
    "MigrationEstimate",
    "estimate_migration",
    "migration_safe_for",
    "plan_rebalancing",
]
