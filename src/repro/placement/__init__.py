"""Multi-host placement and live-migration costing (paper §6 extensions)."""

from .cluster import ClusterPlanner, HostDescriptor, VMDemand
from .migration import (
    MigrationEstimate,
    MigrationParams,
    PrecopySchedule,
    estimate_migration,
    migration_safe_for,
    plan_rebalancing,
    precopy_schedule,
    safe_migration_params,
)

__all__ = [
    "VMDemand",
    "HostDescriptor",
    "ClusterPlanner",
    "MigrationParams",
    "MigrationEstimate",
    "PrecopySchedule",
    "estimate_migration",
    "migration_safe_for",
    "plan_rebalancing",
    "precopy_schedule",
    "safe_migration_params",
]
