"""Typed actuation actions — the control plane's instruction set.

Every way the reproduction can mutate bandwidth or placement — the
guest-side INC_BW/DEC_BW hypercalls, the host admission controller's
commit/decrease/release/shed, PCPU fail/recover, and cluster live
migration/rebalancing — is described by one named tuple here.  Call
sites build an action and :meth:`~repro.control.port.ActuationPort.submit`
it; the owning layer registers the executor that performs the mechanism.

Actions carry the *target object* (port, admission controller, system,
cluster) so executors are stateless one-liners and no name-resolution
happens on the submit path.  ``kind`` is a class attribute used as the
executor-registry key.

These are ``NamedTuple`` classes (same idiom as the telemetry events)
rather than frozen dataclasses: two actions are built per bandwidth
renegotiation on the hot path, and tuple construction is what keeps the
port within the no-controller overhead gate in ``tools/check_perf.py``.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Tuple

#: (vcpu, budget_ns, period_ns) — the same triple the cross-layer port
#: and the admission controller already speak.
Update = Tuple[Any, int, int]

#: Structural base: any of the action tuples below (each carries a
#: ``kind`` class attribute).  Only used in type hints.
Action = Any


class IncBandwidth(NamedTuple):
    """INC_BW / INC_DEC_BW through a VM's cross-layer port."""

    port: Any
    updates: Tuple[Update, ...]

    kind = "inc_bw"


class DecBandwidth(NamedTuple):
    """DEC_BW through a VM's cross-layer port (never rejected)."""

    port: Any
    updates: Tuple[Update, ...]

    kind = "dec_bw"


class AdmitRequest(NamedTuple):
    """Host admission: atomic test-and-commit of an update batch."""

    admission: Any
    updates: Tuple[Update, ...]

    kind = "admit"


class AdmitDecrease(NamedTuple):
    """Host admission: apply a decrease batch (never rejected)."""

    admission: Any
    updates: Tuple[Update, ...]

    kind = "admit_decrease"


class AdmitRelease(NamedTuple):
    """Host admission: forget one VCPU's grant (teardown/extraction)."""

    admission: Any
    vcpu: Any

    kind = "admit_release"


class ShedToCapacity(NamedTuple):
    """Host admission: revoke grants until the total fits capacity."""

    admission: Any

    kind = "shed"


class FailPcpu(NamedTuple):
    """Take one PCPU offline on a system (fault actuation)."""

    system: Any
    pcpu_index: int

    kind = "fail_pcpu"


class RecoverPcpu(NamedTuple):
    """Bring a failed PCPU back online on a system."""

    system: Any
    pcpu_index: int

    kind = "recover_pcpu"


class MigrateVM(NamedTuple):
    """Cluster management plane: live-migrate one VM to a host."""

    cluster: Any
    vm_name: str
    dest: Any
    params: Optional[Any] = None

    kind = "migrate"


class RebalanceCluster(NamedTuple):
    """Cluster management plane: plan + execute rebalancing migrations."""

    cluster: Any
    params: Optional[Any] = None
    target_imbalance: float = 0.2

    kind = "rebalance"
