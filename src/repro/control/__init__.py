"""The control plane: typed actuation, tenants/credit, feedback policy.

``actions`` + ``port`` define the actuation funnel every bandwidth and
placement mutation flows through; ``tenants`` groups VMs under SLOs and
scores them online (the QY-style credit model); ``controller`` closes
the loop from telemetry causes back to actions.
"""

from . import actions
from .controller import FeedbackController
from .port import ActuationPort
from .tenants import CreditLedger, TenantSLO, default_task_owner

__all__ = [
    "ActuationPort",
    "CreditLedger",
    "FeedbackController",
    "TenantSLO",
    "actions",
    "default_task_owner",
]
