"""The actuation port: one funnel for every bandwidth/placement mutation.

Layers that *own* a mechanism (the hypercall path, the admission
controller, the cluster management plane) register an executor per
action kind; layers that *decide* submit typed actions.  Policies — the
feedback controller, experiment probes, tests — observe the stream of
(action, result) pairs without touching the mechanisms.

Determinism contract: with no observers attached, :meth:`submit` is a
dict lookup plus the very call the call site used to make directly — no
events, no RNG, no allocation beyond the action itself — so the
refactored plumbing stays byte-identical when no policy is attached
(``tools/check_determinism.py`` gates on this).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..simcore.errors import ConfigurationError
from .actions import Action

Executor = Callable[[Action], Any]
Observer = Callable[[Action, Any], None]


class ActuationPort:
    """Registry of action executors plus an observer tap."""

    __slots__ = ("_executors", "_observers")

    def __init__(self) -> None:
        self._executors: Dict[str, Executor] = {}
        self._observers: List[Observer] = []

    # -- mechanism side ----------------------------------------------------------

    def register(self, kind: str, executor: Executor) -> None:
        """Install *executor* for action *kind* (latest wins — systems
        re-register on adoption after a live migration)."""
        self._executors[kind] = executor

    def executes(self, kind: str) -> bool:
        """True when an executor for *kind* is installed."""
        return kind in self._executors

    # -- policy side -------------------------------------------------------------

    def observe(self, fn: Observer) -> Callable[[], None]:
        """Tap the action stream; returns an unsubscribe callable.

        Observers run *after* the executor, in registration order, and
        see the executor's return value — enough to audit decisions or
        drive feedback without re-implementing any mechanism.
        """
        self._observers.append(fn)

        def cancel() -> None:
            try:
                self._observers.remove(fn)
            except ValueError:
                pass

        return cancel

    @property
    def observed(self) -> bool:
        """True when any policy is watching (slow path engaged)."""
        return bool(self._observers)

    # -- the funnel --------------------------------------------------------------

    def submit(self, action: Action) -> Any:
        """Execute *action* and notify observers; returns the result."""
        executor = self._executors.get(action.kind)
        if executor is None:
            raise ConfigurationError(
                f"no executor registered for action kind {action.kind!r}"
            )
        result = executor(action)
        if self._observers:
            for fn in list(self._observers):
                fn(action, result)
        return result
