"""The feedback controller: blame causes in, actuations out.

Closes the loop PR 5's diagnosis opened.  The controller subscribes to
the telemetry bus, keeps a small window of evidence (deadline misses,
budget depletions, admission sheds, hypercall faults), and on a fixed
periodic tick classifies each missing VCPU with the same ranked cause
taxonomy :mod:`repro.telemetry.blame` uses offline — then maps the
cause to a typed action on the actuation port:

- ``budget_exhaustion``  → INC_BW: grow the VCPU's budget by a
  multiplicative step until the misses stop (the cross-layer interface
  renegotiates online, which is the paper's whole point);
- ``admission_throttle`` → re-admit the shed reservation; when capacity
  is gone, either evacuate the VM by live migration (cluster hook) or
  make room by shedding the cheapest tenants (credit model);
- ``host_preemption``    → migrate/re-place via the cluster hook;
- ``hypercall_fault``    → wait out the fault window (retry next tick).

The offline ``attribute_miss`` walk needs finalized, tiled spans, so it
only exists at end-of-run; this online estimator applies the same
precedence (throttle masquerades as exhaustion because a shed zeroes
the budget, so the shed test runs first) over streaming evidence.

Determinism: the controller only acts from its periodic engine tick,
every iteration order is fixed (VM list order, sorted credits), and all
mutations go through the actuation port — so a run with a controller
attached is reproducible under a fixed seed, and a run without one is
byte-identical to the pre-control-plane code.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..simcore.time import MSEC
from ..telemetry import events as T
from . import actions as A
from .tenants import CreditLedger

#: Cause labels — the subset of repro.telemetry.blame.CAUSES the online
#: estimator can distinguish, in the same precedence order.
THROTTLE = "admission_throttle"
EXHAUSTION = "budget_exhaustion"
HYPERCALL_FAULT = "hypercall_fault"
PREEMPTION = "host_preemption"


class FeedbackController:
    """Maps online blame estimates to actuation-port actions."""

    def __init__(
        self,
        system,
        ledger: Optional[CreditLedger] = None,
        period_ns: int = 100 * MSEC,
        step: Tuple[int, int] = (5, 4),
        migration_hook: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.system = system
        self.ledger = ledger
        self.period_ns = period_ns
        self.step_num, self.step_den = step
        #: ``fn(vm_name) -> bool`` — evacuate a VM to another host (the
        #: cluster experiments wire this to ``Cluster.migrate``).
        self.migration_hook = migration_hook
        #: Action log: (time, cause, subject, action) for reporting.
        self.actions: List[Tuple[int, str, str, str]] = []
        # -- evidence window (cleared every tick) --
        self._misses: Dict[str, int] = {}  # task -> count
        self._depletes: Dict[str, int] = {}  # vcpu name -> count
        self._fault_seen = False
        # -- persistent evidence --
        self._shed_vcpus: Set[str] = set()  # shed, not yet re-committed
        self._last_params: Dict[int, Tuple[int, int]] = {}  # uid -> nonzero
        self._cancel = None
        self._tick_event = None
        self._attached = False

    # -- wiring ------------------------------------------------------------------

    def attach(self) -> "FeedbackController":
        """Subscribe to the system's bus and start the periodic tick."""
        bus = self.system.machine.bus
        subs = [
            bus.subscribe(T.DEADLINE_MISS, self._on_miss),
            bus.subscribe(T.BUDGET_DEPLETE, self._on_deplete),
            bus.subscribe(T.ADMISSION_DECISION, self._on_admission),
            bus.subscribe(T.FAULT_INJECTED, self._on_fault),
            bus.subscribe(T.VCPU_PARAMS, self._on_params),
        ]
        self._cancel = lambda: [cancel() for cancel in subs]
        self._attached = True
        self._tick_event = self.system.engine.after(
            self.period_ns, self._tick, name="feedback-tick"
        )
        return self

    def detach(self) -> None:
        self._attached = False
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._tick_event is not None:
            self.system.engine.cancel(self._tick_event)
            self._tick_event = None

    # -- evidence collection -----------------------------------------------------

    def _on_miss(self, event) -> None:
        self._misses[event.task] = self._misses.get(event.task, 0) + 1

    def _on_deplete(self, event) -> None:
        self._depletes[event.vcpu] = self._depletes.get(event.vcpu, 0) + 1

    def _on_admission(self, event) -> None:
        if event.level != "host":
            return
        if event.op == "shed":
            self._shed_vcpus.add(event.subject)
        elif event.op == "commit" and event.granted:
            self._shed_vcpus.discard(event.subject)

    def _on_fault(self, event) -> None:
        if "hypercall" in event.fault:
            self._fault_seen = True

    def _on_params(self, event) -> None:
        if event.budget_ns > 0:
            self._last_params[event.vcpu_uid] = (event.budget_ns, event.period_ns)

    # -- the control loop --------------------------------------------------------

    def _classify(self, vcpu) -> str:
        """Online cause estimate, blame-taxonomy precedence: a shed
        zeroes the budget and masquerades as exhaustion, so the
        throttle test runs first; depletion beats fault noise.  DP-WRAP
        has no deplete moment (entitlement is laid out per slice), so a
        missing VCPU whose reservation can still grow is *inferred*
        exhausted — its guaranteed supply was short, whatever donations
        it scavenged.  Only a VCPU already at its period's cap has
        nothing left to ask of this host: that is displacement."""
        if vcpu.name in self._shed_vcpus:
            return THROTTLE
        if self._depletes.get(vcpu.name):
            return EXHAUSTION
        if self._fault_seen:
            return HYPERCALL_FAULT
        if vcpu.budget_ns < vcpu.period_ns:
            return EXHAUSTION
        return PREEMPTION

    def _tick(self) -> None:
        if not self._attached:
            return
        now = self.system.engine.now
        if self._misses:
            for vm in list(self.system.vms):
                for vcpu in vm.vcpus:
                    missing = [
                        t for t in vcpu.rt_tasks() if self._misses.get(t.name)
                    ]
                    if not missing:
                        continue
                    self._act(self._classify(vcpu), vm, vcpu, now)
        self._misses.clear()
        self._depletes.clear()
        self._fault_seen = False
        self._tick_event = self.system.engine.after(
            self.period_ns, self._tick, name="feedback-tick"
        )

    def _act(self, cause: str, vm, vcpu, now: int) -> None:
        if cause == EXHAUSTION:
            self._bump(vm, vcpu, now)
        elif cause == THROTTLE:
            self._reclaim(vm, vcpu, now)
        elif cause == PREEMPTION:
            if self.migration_hook is not None and self._evacuate(vm, now):
                return
            self.actions.append((now, cause, vcpu.name, "noop"))
        else:  # hypercall fault window: acting now would be lost too
            self.actions.append((now, cause, vcpu.name, "wait"))

    def _submit_increase(self, vm, updates) -> bool:
        return self.system.machine.control.submit(
            A.IncBandwidth(port=vm.port, updates=tuple(updates))
        )

    def _bump(self, vm, vcpu, now: int) -> None:
        """Grow the exhausted VCPU's budget one multiplicative step."""
        period = vcpu.period_ns
        budget = vcpu.budget_ns
        if budget >= period:
            self.actions.append((now, EXHAUSTION, vcpu.name, "at-cap"))
            return
        new_budget = min(period, max(budget + 1, budget * self.step_num // self.step_den))
        if self._submit_increase(vm, [(vcpu, new_budget, period)]):
            self.actions.append((now, EXHAUSTION, vcpu.name, "inc_bw"))
            return
        if self.ledger is not None and self._make_room(
            Fraction(new_budget - budget, period), exclude_vm=vm.name
        ):
            if self._submit_increase(vm, [(vcpu, new_budget, period)]):
                self.actions.append((now, EXHAUSTION, vcpu.name, "inc_bw"))
                return
        self.actions.append((now, EXHAUSTION, vcpu.name, "rejected"))

    def _reclaim(self, vm, vcpu, now: int) -> None:
        """Re-admit a shed reservation, shedding cheaper tenants or
        evacuating the VM when this host has no capacity left."""
        params = self._last_params.get(vcpu.uid)
        if params is None:
            self.actions.append((now, THROTTLE, vcpu.name, "no-params"))
            return
        budget, period = params
        if self._submit_increase(vm, [(vcpu, budget, period)]):
            self.actions.append((now, THROTTLE, vcpu.name, "readmit"))
            return
        needed = Fraction(budget, period) - self.system.admission.remaining
        if self.ledger is not None and self._make_room(needed, exclude_vm=vm.name):
            if self._submit_increase(vm, [(vcpu, budget, period)]):
                self.actions.append((now, THROTTLE, vcpu.name, "readmit"))
                return
        if self.migration_hook is not None and self._evacuate(vm, now):
            return
        self.actions.append((now, THROTTLE, vcpu.name, "stuck"))

    def _make_room(self, needed: Fraction, exclude_vm: str) -> bool:
        """Zero the cheapest tenants' grants (DEC_BW through their own
        ports) until *needed* bandwidth is free.  Never touches VMs of
        the victim's own tenant or unmapped VMs."""
        if needed <= 0:
            return True
        admission = self.system.admission
        credits = self.ledger.credits()
        exclude_tenant = self.ledger.tenant_of_vm(exclude_vm)
        candidates = []  # (credit, vm list index) — ascending credit
        for index, vm in enumerate(self.system.vms):
            tenant = self.ledger.tenant_of_vm(vm.name)
            if not tenant or tenant == exclude_tenant or vm.name == exclude_vm:
                continue
            candidates.append((credits[tenant], index))
        for _, index in sorted(candidates):
            vm = self.system.vms[index]
            for vcpu in vm.vcpus:
                if admission.remaining >= needed:
                    return True
                if admission.granted(vcpu) <= 0:
                    continue
                self.system.machine.control.submit(
                    A.DecBandwidth(
                        port=vm.port,
                        updates=((vcpu, 0, max(vcpu.period_ns, 1)),),
                    )
                )
                self.actions.append(
                    (self.system.engine.now, THROTTLE, vcpu.name, "shed_tenant")
                )
        return admission.remaining >= needed

    def _evacuate(self, vm, now: int) -> bool:
        """Hand the VM to the cluster to re-place elsewhere.

        A source-side shed must not travel with the VM: the cluster's
        :class:`~repro.cluster.live.LiveMigration` restores the derived
        reservation at adopt time, so the controller only decides *that*
        the VM should move, never with which parameters.
        """
        if self.migration_hook(vm.name):
            self.actions.append((now, THROTTLE, vm.name, "migrate"))
            return True
        return False

    # -- reporting ---------------------------------------------------------------

    def action_counts(self) -> Dict[str, int]:
        """How often each action fired (sorted keys, reporting)."""
        counts: Dict[str, int] = {}
        for _, _, _, action in self.actions:
            counts[action] = counts.get(action, 0) + 1
        return dict(sorted(counts.items()))
