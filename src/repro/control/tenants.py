"""Tenants, SLOs and online credit scoring (the QY-style credit model).

VMs are grouped into *tenants*, each carrying an SLO (a p99 latency
target, a deadline-miss error budget, a priority weight).  The
:class:`CreditLedger` streams the same bus events the standard
aggregators consume — deadline hits/misses, job latencies, host-level
admission sheds — into per-tenant counters and an exact latency tail,
and scores each tenant online:

    credit = weight * ( W_BUDGET    * error-budget remaining
                      + W_VIOLATION * 1 / (1 + violations)
                      + W_TAIL      * min(1, target_p99 / p99) )

Credits drive two mechanisms: the admission controller's shed order
(:meth:`CreditLedger.shed_order`, installed through
``UtilizationAdmission.set_shed_policy`` — cheapest tenants shed
first), and the feedback controller's throttle response (re-admit
high-credit victims at the expense of low-credit tenants).

Determinism/merge contract: the ledger state is counters plus an exact
:class:`~repro.telemetry.aggregate.TailAggregator`, so ``snapshot()`` /
``merge()`` follow the streaming-aggregator rules — merging per-shard
snapshots in canonical order reproduces the serial state byte-for-byte,
and :meth:`credit` is a pure function of that state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..simcore.errors import ConfigurationError
from ..simcore.time import to_usec
from ..telemetry import events as T
from ..telemetry.aggregate import TailAggregator
from ..telemetry.bus import TelemetryBus

#: Credit-model weights (sum to 1): error-budget remaining dominates,
#: the p99/target ratio refines, the violation count damps repeat
#: offenders.
W_BUDGET = 0.5
W_VIOLATION = 0.2
W_TAIL = 0.3


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's service-level objective."""

    name: str
    target_p99_usec: float
    #: Allowed deadline-miss fraction before the error budget is spent.
    error_budget: float = 0.01
    #: Priority weight: multiplies the credit score (gold > bronze).
    weight: int = 1

    def __post_init__(self) -> None:
        if self.target_p99_usec <= 0:
            raise ConfigurationError(f"{self.name}: non-positive p99 target")
        if not 0 <= self.error_budget <= 1:
            raise ConfigurationError(f"{self.name}: error budget outside [0,1]")
        if self.weight < 1:
            raise ConfigurationError(f"{self.name}: weight must be >= 1")


def default_task_owner(task_name: str) -> str:
    """Map a task name to its VM: the experiments name tasks ``vm.rta``."""
    return task_name.split(".", 1)[0]


class _TenantState:
    """Per-tenant streaming counters (internal)."""

    __slots__ = ("met", "missed", "violations", "tail")

    def __init__(self, seed: int = 1) -> None:
        self.met = 0
        self.missed = 0
        #: Host-level admission sheds charged to this tenant.
        self.violations = 0
        self.tail = TailAggregator(mode="exact", seed=seed)


class CreditLedger:
    """Online per-tenant credit scores from the telemetry bus."""

    def __init__(
        self,
        slos: Sequence[TenantSLO],
        vm_tenant: Mapping[str, str],
        task_owner: Callable[[str], str] = default_task_owner,
        seed: int = 1,
    ) -> None:
        self.slos: Dict[str, TenantSLO] = {s.name: s for s in slos}
        for vm, tenant in vm_tenant.items():
            if tenant not in self.slos:
                raise ConfigurationError(
                    f"VM {vm!r} maps to unknown tenant {tenant!r}"
                )
        self.vm_tenant: Dict[str, str] = dict(vm_tenant)
        self.task_owner = task_owner
        self._seed = seed
        self._state: Dict[str, _TenantState] = {
            name: _TenantState(seed) for name in self.slos
        }
        self._cancel: Optional[Callable[[], None]] = None

    # -- wiring ------------------------------------------------------------------

    def tenant_of_vm(self, vm: str) -> str:
        """Tenant of a VM name ("" for unmapped VMs) — also the resolver
        shape ``UtilizationAdmission.bind_tenants`` expects."""
        return self.vm_tenant.get(vm, "")

    def _tenant_of_task(self, task: str) -> str:
        return self.vm_tenant.get(self.task_owner(task), "")

    def attach(self, bus: TelemetryBus) -> "CreditLedger":
        hit = bus.subscribe(T.DEADLINE_HIT, self._on_hit)
        miss = bus.subscribe(T.DEADLINE_MISS, self._on_miss)
        latency = bus.subscribe(T.JOB_LATENCY, self._on_latency)
        admission = bus.subscribe(T.ADMISSION_DECISION, self._on_admission)
        self._cancel = lambda: (hit(), miss(), latency(), admission())
        return self

    def detach(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # -- event handlers ----------------------------------------------------------

    def _on_hit(self, event) -> None:
        tenant = self._tenant_of_task(event.task)
        if tenant:
            self._state[tenant].met += 1

    def _on_miss(self, event) -> None:
        tenant = self._tenant_of_task(event.task)
        if tenant:
            self._state[tenant].missed += 1

    def _on_latency(self, event) -> None:
        tenant = self._tenant_of_task(event.task)
        if tenant:
            self._state[tenant].tail.add(to_usec(event.latency_ns))

    def _on_admission(self, event) -> None:
        # Host-level sheds are SLO violations charged to the owning
        # tenant; the event's ``vm`` field (PR 9) makes the attribution
        # lookup-free.
        if event.level != "host" or event.op != "shed":
            return
        tenant = self.vm_tenant.get(event.vm, "")
        if tenant:
            self._state[tenant].violations += 1

    # -- scoring -----------------------------------------------------------------

    def credit(self, tenant: str) -> float:
        """The tenant's current credit (pure function of ledger state)."""
        slo = self.slos[tenant]
        state = self._state[tenant]
        decided = state.met + state.missed
        miss_ratio = state.missed / decided if decided else 0.0
        if slo.error_budget > 0:
            budget_remaining = max(0.0, 1.0 - miss_ratio / slo.error_budget)
        else:
            budget_remaining = 1.0 if state.missed == 0 else 0.0
        violation_score = 1.0 / (1.0 + state.violations)
        if len(state.tail):
            p99 = state.tail.percentile(99.0)
            timeliness = 1.0 if p99 <= 0 else min(1.0, slo.target_p99_usec / p99)
        else:
            timeliness = 1.0
        return slo.weight * (
            W_BUDGET * budget_remaining
            + W_VIOLATION * violation_score
            + W_TAIL * timeliness
        )

    def credits(self) -> Dict[str, float]:
        """All tenants' credits, keyed by tenant name (sorted)."""
        return {name: self.credit(name) for name in sorted(self.slos)}

    def stats(self, tenant: str) -> Dict[str, object]:
        """Raw counters behind one tenant's credit (reporting)."""
        state = self._state[tenant]
        return {
            "met": state.met,
            "missed": state.missed,
            "violations": state.violations,
            "samples": len(state.tail),
        }

    # -- the shed policy ---------------------------------------------------------

    def shed_order(self, uids: List[int], owners: Dict[int, str]) -> List[int]:
        """Revocation order for ``UtilizationAdmission.set_shed_policy``.

        Cheapest first: grants of VMs outside any tenant shed before
        tenant grants (no SLO protects them), then ascending tenant
        credit; newest-VCPU-first breaks ties so the order stays
        deterministic whatever the credit landscape.
        """
        credits = self.credits()

        def key(uid: int):
            tenant = self.vm_tenant.get(owners.get(uid, ""), "")
            if not tenant:
                return (0, 0.0, -uid)
            return (1, credits[tenant], -uid)

        return sorted(uids, key=key)

    # -- snapshot / merge (runner-shard contract) --------------------------------

    def snapshot(self) -> dict:
        """JSON-able state, tenants in sorted order."""
        return {
            "tenants": {
                name: {
                    "met": state.met,
                    "missed": state.missed,
                    "violations": state.violations,
                    "tail": state.tail.snapshot(),
                }
                for name, state in sorted(self._state.items())
            }
        }

    @classmethod
    def merge(
        cls,
        snapshots: Sequence[dict],
        slos: Sequence[TenantSLO],
        vm_tenant: Mapping[str, str],
        seed: int = 1,
    ) -> "CreditLedger":
        """Combine per-shard snapshots (canonical shard order) into a
        ledger whose credits equal the serial run's byte-for-byte."""
        merged = cls(slos, vm_tenant, seed=seed)
        for name, state in merged._state.items():
            per_shard = [
                s["tenants"][name] for s in snapshots if name in s["tenants"]
            ]
            state.met = sum(p["met"] for p in per_shard)
            state.missed = sum(p["missed"] for p in per_shard)
            state.violations = sum(p["violations"] for p in per_shard)
            state.tail = TailAggregator.merge(
                [p["tail"] for p in per_shard], seed=seed
            )
        return merged
