"""Declarative scenario runner.

Describes a whole experiment — host, scheduler, VMs, tasks, workloads —
as a plain JSON-compatible dict, so setups can be versioned, shared and
run from the CLI without writing Python:

    {
      "system": {"type": "rtvirt", "pcpus": 2, "slack_us": 500},
      "duration_s": 10,
      "seed": 42,
      "vms": [
        {"name": "vm1",
         "tasks": [{"name": "rta1", "slice_ms": 5, "period_ms": 20}]},
        {"name": "spvm",
         "tasks": [{"name": "sp1", "slice_ms": 2, "period_ms": 50,
                    "kind": "sporadic", "max_requests": 40}]},
        {"name": "bg1", "background": true}
      ]
    }

System types: ``rtvirt`` (default), ``credit``, ``rtxen`` (RT-Xen VMs
need an ``interface_us: [budget, period]`` or get one from CSA).

Run from the shell:  ``python -m repro scenario my_setup.json``
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .analysis.csa import csa_best_interface
from .analysis.dbf import AnalysisTask
from .baselines.credit import CreditSystem
from .baselines.rtxen import RTXenSystem
from .core.system import RTVirtSystem
from .guest.task import Task, TaskKind
from .metrics.deadlines import MissReport, collect_miss_report
from .simcore.errors import ConfigurationError
from .simcore.rng import RandomStreams
from .simcore.time import MSEC, SEC, USEC, msec, sec, usec
from .workloads.periodic import PeriodicDriver
from .workloads.arrivals import ArrivalMux
from .workloads.sporadic import SporadicDriver


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    duration_ns: int
    report: MissReport
    system: Any = field(repr=False, default=None)

    def rows(self) -> List[Dict[str, Any]]:
        """Per-task metric rows (plus a TOTAL row), stable order."""
        rows: List[Dict[str, Any]] = []
        for task_name in sorted(self.report.per_task):
            stats = self.report.per_task[task_name]
            rows.append(
                {
                    "task": task_name,
                    "released": stats.released,
                    "met": stats.met,
                    "missed": stats.missed,
                    "miss_pct": round(stats.miss_ratio * 100, 3),
                }
            )
        rows.append(
            {
                "task": "TOTAL",
                "released": self.report.total_released,
                "met": self.report.total_met,
                "missed": self.report.total_missed,
                "miss_pct": round(self.report.overall_miss_ratio * 100, 3),
            }
        )
        return rows

    def summary(self) -> str:
        lines = [
            f"scenario {self.name!r}: {self.duration_ns / SEC:g}s simulated",
            f"  jobs released: {self.report.total_released}",
            f"  deadlines met: {self.report.total_met}",
            f"  deadlines missed: {self.report.total_missed} "
            f"({self.report.overall_miss_ratio * 100:.3f}%)",
        ]
        for task_name in self.report.tasks_with_misses:
            stats = self.report.per_task[task_name]
            lines.append(
                f"    {task_name}: {stats.missed} misses "
                f"({stats.miss_ratio * 100:.2f}%)"
            )
        return "\n".join(lines)


def _require(mapping: Dict, key: str, context: str):
    if key not in mapping:
        raise ConfigurationError(f"scenario {context}: missing {key!r}")
    return mapping[key]


def _build_system(spec: Dict[str, Any]):
    system_spec = dict(spec.get("system", {}))
    kind = system_spec.pop("type", "rtvirt")
    pcpus = int(system_spec.pop("pcpus", 1))
    if kind == "rtvirt":
        slack = usec(system_spec.pop("slack_us", 500))
        min_slice = usec(system_spec.pop("min_global_slice_us", 250))
        return RTVirtSystem(
            pcpu_count=pcpus, slack_ns=slack, min_global_slice_ns=min_slice
        )
    if kind == "credit":
        return CreditSystem(
            pcpu_count=pcpus,
            timeslice_ns=usec(system_spec.pop("timeslice_us", 30_000)),
            ratelimit_ns=usec(system_spec.pop("ratelimit_us", 1_000)),
        )
    if kind == "rtxen":
        return RTXenSystem(pcpu_count=pcpus)
    raise ConfigurationError(f"unknown system type {kind!r}")


def _task_from_spec(task_spec: Dict[str, Any]) -> Task:
    name = _require(task_spec, "name", "task")
    kind = TaskKind(task_spec.get("kind", "periodic"))
    return Task(
        name,
        msec(_require(task_spec, "slice_ms", name)),
        msec(_require(task_spec, "period_ms", name)),
        kind,
    )


def _rtxen_interface(vm_spec: Dict[str, Any], tasks: List[Task]):
    explicit = vm_spec.get("interface_us")
    if explicit is not None:
        return usec(explicit[0]), usec(explicit[1])
    analysis = [AnalysisTask(t.slice_ns, t.period_ns) for t in tasks]
    iface = csa_best_interface(analysis, min_period=MSEC)
    return iface.budget, iface.period


@dataclass
class ScenarioBuild:
    """A scenario system built but not yet run.

    ``task_vms`` maps task name to its ``(vm, task)`` pair; trace replay
    uses it (with ``start_drivers=False``) to re-drive recorded release
    timelines through the same VMs the live run used.
    """

    system: Any
    mux: ArrivalMux
    duration_ns: int
    streams: RandomStreams
    all_tasks: List[Task]
    task_vms: Dict[str, Any]


def build_scenario_system(
    spec: Dict[str, Any],
    name: str = "scenario",
    attach: Optional[Any] = None,
    start_drivers: bool = True,
) -> ScenarioBuild:
    """Build the system, VMs and tasks of *spec*; optionally start drivers.

    *attach*, when given, is called with the freshly built system before
    any VM is created — the hook observers use to subscribe telemetry
    consumers (streaming aggregators, the chrome-trace exporter) to
    ``system.machine.bus`` so they see every event of the run, including
    registration-time admission decisions.
    """
    duration_ns = sec(spec.get("duration_s", 10))
    streams = RandomStreams(int(spec.get("seed", 0)))
    system = _build_system(spec)
    if attach is not None:
        attach(system)
    system_kind = spec.get("system", {}).get("type", "rtvirt")
    mux = ArrivalMux(system.engine, name=name)
    all_tasks: List[Task] = []
    task_vms: Dict[str, Any] = {}

    for vm_spec in spec.get("vms", []):
        vm_name = _require(vm_spec, "name", "vm")
        if vm_spec.get("background"):
            system.create_background_vm(
                vm_name, processes=int(vm_spec.get("processes", 1))
            )
            continue
        tasks = [_task_from_spec(t) for t in vm_spec.get("tasks", [])]
        if system_kind == "rtvirt":
            vm = system.create_vm(
                vm_name,
                vcpu_count=int(vm_spec.get("vcpus", 1)),
                max_vcpus=vm_spec.get("max_vcpus"),
                slack_ns=(
                    usec(vm_spec["slack_us"]) if "slack_us" in vm_spec else None
                ),
            )
            for task in tasks:
                vm.register_task(task)
        elif system_kind == "rtxen":
            budget, period = _rtxen_interface(vm_spec, tasks)
            vm = system.create_vm(vm_name, interfaces=[(budget, period)])
            for task in tasks:
                system.register_rta(vm, task)
        else:  # credit
            vm = system.create_vm(vm_name, weight=int(vm_spec.get("weight", 256)))
            for task in tasks:
                vm.register_task(task)
        for task, task_spec in zip(tasks, vm_spec.get("tasks", [])):
            all_tasks.append(task)
            task_vms[task.name] = (vm, task)
            if not start_drivers:
                continue
            if task.kind is TaskKind.SPORADIC:
                SporadicDriver(
                    system.engine,
                    vm,
                    task,
                    streams.stream(f"{vm_name}.{task.name}"),
                    min_interarrival_ns=msec(
                        task_spec.get("min_interarrival_ms", 100)
                    ),
                    max_interarrival_ns=msec(
                        task_spec.get("max_interarrival_ms", 1000)
                    ),
                    max_requests=task_spec.get("max_requests"),
                    mux=mux,
                ).start()
            else:
                PeriodicDriver(
                    system.engine,
                    vm,
                    task,
                    phase_ns=msec(task_spec.get("phase_ms", 0)),
                ).start()

    return ScenarioBuild(
        system=system,
        mux=mux,
        duration_ns=duration_ns,
        streams=streams,
        all_tasks=all_tasks,
        task_vms=task_vms,
    )


def run_scenario(
    spec: Dict[str, Any],
    name: str = "scenario",
    attach: Optional[Any] = None,
) -> ScenarioResult:
    """Build and run the scenario described by *spec*.

    *attach* is forwarded to :func:`build_scenario_system`.
    """
    build = build_scenario_system(spec, name=name, attach=attach)
    build.system.run(build.duration_ns)
    build.system.finalize()
    return ScenarioResult(
        name=name,
        duration_ns=build.duration_ns,
        report=collect_miss_report(build.all_tasks),
        system=build.system,
    )


def run_scenario_file(path: str, attach=None) -> ScenarioResult:
    """Load a JSON scenario file and run it.

    *attach* is forwarded to :func:`run_scenario` — the hook the CLI
    uses to subscribe telemetry consumers before the run starts.
    """
    with open(path) as handle:
        spec = json.load(handle)
    return run_scenario(spec, name=path, attach=attach)
