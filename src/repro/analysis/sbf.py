"""Supply bound functions for the periodic resource model.

A periodic resource Γ = (Π, Θ) provides Θ units of CPU every Π units of
time, at arbitrary points inside each period.  ``sbf(Γ, t)`` is the
*minimum* supply any interval of length *t* is guaranteed (Shin & Lee,
RTSS'03) — the worst case being a budget delivered at the very start of
one period followed by one at the very end of the next, leaving a gap of
``2(Π − Θ)``.

This is the model underlying CARTS and RT-Xen's deferrable-server
interfaces; its pessimism relative to the task set's raw utilization is
exactly the bandwidth waste Figure 3 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore.errors import ConfigurationError


@dataclass(frozen=True)
class PeriodicResource:
    """A (period, budget) virtual processor, in ns."""

    period: int
    budget: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if not 0 <= self.budget <= self.period:
            raise ConfigurationError(
                f"budget {self.budget} must lie in [0, period={self.period}]"
            )

    @property
    def bandwidth(self) -> float:
        return self.budget / self.period

    @property
    def longest_starvation(self) -> int:
        """The worst-case supply gap 2(Π − Θ)."""
        return 2 * (self.period - self.budget)


def sbf(resource: PeriodicResource, t: int) -> int:
    """Minimum guaranteed supply of *resource* in an interval of length *t*."""
    if t < 0:
        raise ConfigurationError(f"negative interval {t}")
    period, budget = resource.period, resource.budget
    if budget == 0:
        return 0
    y = t - (period - budget)
    if y < 0:
        return 0
    k = y // period
    return k * budget + max(0, y - k * period - (period - budget))


def lsbf(resource: PeriodicResource, t: int) -> float:
    """Linear lower bound on sbf (useful for quick feasibility pruning)."""
    period, budget = resource.period, resource.budget
    if budget == 0:
        return 0.0
    return max(0.0, (budget / period) * (t - 2 * (period - budget)))
