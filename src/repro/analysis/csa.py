"""Compositional scheduling analysis — the CARTS substitute (paper §4.2).

RT-Xen requires each VM's (period, budget) interface to be computed
offline with the CARTS tool: given the RTAs inside the VM and a
candidate interface period Π, find the minimal budget Θ such that the
EDF demand of the task set never exceeds the periodic resource's
guaranteed supply.  CARTS also needs Π itself as an input, "which is
difficult to determine"; the paper's authors sweep candidate periods
and keep the cheapest interface — :func:`csa_best_interface` reproduces
that (time-consuming) search.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..simcore.errors import AnalysisError, ConfigurationError
from ..simcore.time import MSEC, USEC
from .dbf import AnalysisTask, dbf, demand_checkpoints
from .sbf import PeriodicResource, sbf


def is_schedulable(tasks: Sequence[AnalysisTask], resource: PeriodicResource) -> bool:
    """EDF schedulability of *tasks* on the periodic resource.

    Checks ``dbf(t) <= sbf(t)`` at every demand step point up to the
    hyperperiod bound.
    """
    if not tasks:
        return True
    if sum(t.utilization for t in tasks) > resource.bandwidth + 1e-12:
        return False
    for t in demand_checkpoints(tasks):
        if dbf(tasks, t) > sbf(resource, t):
            return False
    return True


def csa_interface(
    tasks: Sequence[AnalysisTask], period: int, budget_granularity: int = 1
) -> PeriodicResource:
    """Minimal-budget interface with the given period (one CARTS query).

    Binary-searches the budget in units of *budget_granularity* (CARTS
    emits whole-millisecond budgets for millisecond task sets — Table 2's
    interfaces are all integer ms).  Raises :class:`AnalysisError` when
    even a fully dedicated CPU (Θ = Π) cannot schedule the task set.
    """
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if budget_granularity <= 0:
        raise ConfigurationError("budget granularity must be positive")
    if not tasks:
        return PeriodicResource(period, 0)
    if not is_schedulable(tasks, PeriodicResource(period, period)):
        raise AnalysisError(
            f"task set with utilization {sum(t.utilization for t in tasks):.3f} "
            f"is infeasible even on a dedicated CPU with period {period}"
        )
    steps = period // budget_granularity  # the full budget Θ = Π is feasible
    if steps * budget_granularity < period:
        steps += 1
    lo, hi = 0, steps  # invariant: hi*g (capped at Π) feasible, lo*g not
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if is_schedulable(tasks, PeriodicResource(period, mid * budget_granularity)):
            hi = mid
        else:
            lo = mid
    return PeriodicResource(period, min(hi * budget_granularity, period))


def default_period_candidates(
    tasks: Sequence[AnalysisTask], granularity: Optional[int] = None
) -> List[int]:
    """Candidate interface periods for the sweep.

    All multiples of *granularity* below the smallest task period.  The
    default granularity is 1 ms for millisecond-scale task sets — CARTS
    interfaces in the RT-Xen evaluation are whole milliseconds (Table 2's
    (4,5), (3,4), (2,3), (1,9)) because Xen's scheduling quantum makes
    finer server periods impractical — and proportionally finer for
    microsecond-scale task sets (the memcached VM).
    """
    if not tasks:
        raise ConfigurationError("empty task set")
    p_min = min(t.period for t in tasks)
    if granularity is None:
        granularity = MSEC if p_min > 2 * MSEC else max(p_min // 40, USEC)
    candidates = []
    value = granularity
    while value <= p_min:
        candidates.append(value)
        value += granularity
    if not candidates:
        candidates.append(p_min)
    return candidates


def csa_best_interface(
    tasks: Sequence[AnalysisTask],
    candidate_periods: Optional[Iterable[int]] = None,
    min_period: int = 0,
    budget_granularity: Optional[int] = None,
) -> PeriodicResource:
    """The cheapest feasible interface over a sweep of candidate periods.

    *min_period* excludes interfaces whose period is too small for the
    VM to actually run (the paper hit exactly this with memcached: the
    tool's optimum (Π=14 µs, Θ=2 µs) "results in the VM not runnable").
    Budgets are quantized like the periods (1 ms for millisecond-scale
    task sets, CARTS-style) unless *budget_granularity* says otherwise.
    """
    if candidate_periods is None:
        candidate_periods = default_period_candidates(tasks)
    if budget_granularity is None:
        p_min = min(t.period for t in tasks) if tasks else MSEC
        budget_granularity = MSEC if p_min > 2 * MSEC else 1
    best: Optional[PeriodicResource] = None
    for period in candidate_periods:
        if period <= 0 or period < min_period:
            continue
        try:
            resource = csa_interface(tasks, period, budget_granularity)
        except AnalysisError:
            continue
        if best is None or resource.bandwidth < best.bandwidth - 1e-12:
            best = resource
    if best is None:
        raise AnalysisError("no candidate period yields a feasible interface")
    return best
