"""Offline real-time analysis: dbf/sbf, CSA (CARTS substitute), DMPR."""

from .csa import csa_best_interface, csa_interface, default_period_candidates, is_schedulable
from .dbf import AnalysisTask, dbf, dbf_task, demand_checkpoints, hyperperiod, utilization
from .dmpr import DMPRInterface, claim_for_group, claimed_cpus, decompose
from .sbf import PeriodicResource, lsbf, sbf
from .utilization import (
    dpwrap_schedulable,
    edf_uniprocessor_schedulable,
    exact_utilization,
    minimum_cpus_dpwrap,
)

__all__ = [
    "AnalysisTask",
    "dbf",
    "dbf_task",
    "demand_checkpoints",
    "hyperperiod",
    "utilization",
    "PeriodicResource",
    "sbf",
    "lsbf",
    "csa_interface",
    "csa_best_interface",
    "default_period_candidates",
    "is_schedulable",
    "DMPRInterface",
    "decompose",
    "claimed_cpus",
    "claim_for_group",
    "exact_utilization",
    "edf_uniprocessor_schedulable",
    "dpwrap_schedulable",
    "minimum_cpus_dpwrap",
]
