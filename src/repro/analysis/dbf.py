"""Demand bound functions for EDF task sets.

``dbf(W, t)`` is the maximum cumulative execution demand of task set
*W* in any interval of length *t* — the quantity compositional
scheduling analysis compares against the virtual processor's supply.
Tasks here follow the paper's implicit-deadline model (deadline =
period) but the functions accept explicit deadlines for generality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from ..simcore.errors import ConfigurationError


@dataclass(frozen=True)
class AnalysisTask:
    """A (wcet, period[, deadline]) task for offline analysis, in ns."""

    wcet: int
    period: int
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise ConfigurationError(
                f"wcet and period must be positive ({self.wcet}, {self.period})"
            )
        if self.effective_deadline < self.wcet:
            raise ConfigurationError("deadline shorter than wcet")

    @property
    def effective_deadline(self) -> int:
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def dbf_task(task: AnalysisTask, t: int) -> int:
    """EDF demand of one sporadic task in an interval of length *t*."""
    if t < 0:
        raise ConfigurationError(f"negative interval {t}")
    d = task.effective_deadline
    if t < d:
        return 0
    return ((t - d) // task.period + 1) * task.wcet


def dbf(tasks: Sequence[AnalysisTask], t: int) -> int:
    """EDF demand of a task set in an interval of length *t*."""
    return sum(dbf_task(task, t) for task in tasks)


def hyperperiod(tasks: Sequence[AnalysisTask]) -> int:
    """Least common multiple of the periods."""
    if not tasks:
        raise ConfigurationError("empty task set")
    lcm = 1
    for task in tasks:
        lcm = lcm * task.period // math.gcd(lcm, task.period)
    return lcm


def demand_checkpoints(
    tasks: Sequence[AnalysisTask], bound: Optional[int] = None, max_points: int = 20_000
) -> List[int]:
    """The interval lengths at which dbf steps, up to *bound*.

    dbf is a right-continuous step function that only increases at job
    deadlines, and the supply bound function is non-decreasing, so
    checking ``dbf(t) <= sbf(t)`` at these points suffices.  The bound
    defaults to the hyperperiod plus the largest deadline; when the
    hyperperiod explodes (co-prime periods) the list is truncated to
    *max_points* — a documented approximation that can only make the
    analysis *more* optimistic, never unsafe in our usage (the paper's
    point is RT-Xen's pessimism, so erring optimistic is conservative
    for the comparison).
    """
    if not tasks:
        raise ConfigurationError("empty task set")
    if bound is None:
        bound = hyperperiod(tasks) + max(t.effective_deadline for t in tasks)
    points = set()
    for task in tasks:
        d = task.effective_deadline
        k = 0
        while d + k * task.period <= bound:
            points.add(d + k * task.period)
            k += 1
            if len(points) > 50 * max_points:  # pragma: no cover - safety valve
                break
    ordered = sorted(points)
    return ordered[:max_points]


def utilization(tasks: Iterable[AnalysisTask]) -> float:
    """Total utilization of the task set."""
    return sum(t.utilization for t in tasks)
