"""Exact utilization math and simple schedulability predicates."""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Tuple

from .dbf import AnalysisTask


def exact_utilization(pairs: Iterable[Tuple[int, int]]) -> Fraction:
    """Sum of wcet/period over (wcet_ns, period_ns) pairs, exactly."""
    total = Fraction(0)
    for wcet, period in pairs:
        total += Fraction(wcet, period)
    return total


def edf_uniprocessor_schedulable(tasks: Sequence[AnalysisTask]) -> bool:
    """Implicit-deadline EDF on one CPU: schedulable iff U <= 1."""
    return exact_utilization((t.wcet, t.period) for t in tasks) <= 1


def dpwrap_schedulable(tasks: Sequence[AnalysisTask], cpus: int) -> bool:
    """DP-WRAP optimality: schedulable iff U <= m and every U_i <= 1."""
    if any(Fraction(t.wcet, t.period) > 1 for t in tasks):
        return False
    return exact_utilization((t.wcet, t.period) for t in tasks) <= cpus


def minimum_cpus_dpwrap(tasks: Sequence[AnalysisTask]) -> int:
    """Fewest CPUs DP-WRAP needs (the ceiling of total utilization)."""
    total = exact_utilization((t.wcet, t.period) for t in tasks)
    cpus = int(total)
    if total > cpus:
        cpus += 1
    return max(cpus, 1)
