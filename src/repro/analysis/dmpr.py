"""DMPR — the claimed-CPU computation for a group of RT-Xen VMs.

The RT-Xen evaluation uses the Deterministic Multiprocessor Resource
periodic model to decide how many physical CPUs must be *set aside* for
a group of VMs whose interfaces CSA produced.  A VM whose interface
bandwidth exceeds one CPU is decomposed into ``m'`` fully dedicated
CPUs plus one partial periodic server; the partial servers of all VMs
are then packed onto whole CPUs.

The packing step reproduces RT-Xen's compositional claim with first-fit
decreasing over server bandwidths (each claimed CPU hosts servers whose
bandwidths sum to at most one).  The difference between this claim and
the allocated bandwidth is the wasted share Figure 3 reports — CPUs
that are reserved for schedulability but cannot accept any further RTA.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

from ..simcore.errors import ConfigurationError
from .sbf import PeriodicResource


@dataclass(frozen=True)
class DMPRInterface:
    """A VM's multiprocessor interface: m' full CPUs + one partial server."""

    full_cpus: int
    partial: PeriodicResource

    @property
    def bandwidth(self) -> Fraction:
        return self.full_cpus + Fraction(self.partial.budget, self.partial.period)


def decompose(resource: PeriodicResource, demand_cpus: Fraction) -> DMPRInterface:
    """Split a (possibly >1 CPU) bandwidth demand into full CPUs + partial.

    *demand_cpus* is the total interface bandwidth the VM needs;
    *resource* supplies the interface period for the partial server.
    """
    if demand_cpus < 0:
        raise ConfigurationError("negative bandwidth demand")
    full = int(demand_cpus)
    rest = demand_cpus - full
    budget = (rest * resource.period).__ceil__()
    if budget > resource.period:  # rounding guard
        budget = resource.period
    return DMPRInterface(full, PeriodicResource(resource.period, budget))


def claimed_cpus(interfaces: Sequence[DMPRInterface]) -> int:
    """Whole CPUs RT-Xen must set aside for these interfaces.

    Full CPUs are dedicated; partial servers are packed first-fit
    decreasing into unit-capacity CPUs using exact rational arithmetic.
    """
    total_full = sum(i.full_cpus for i in interfaces)
    partials: List[Fraction] = [
        Fraction(i.partial.budget, i.partial.period)
        for i in interfaces
        if i.partial.budget > 0
    ]
    bins: List[Fraction] = []
    for bw in sorted(partials, reverse=True):
        for idx, load in enumerate(bins):
            if load + bw <= 1:
                bins[idx] = load + bw
                break
        else:
            bins.append(bw)
    return total_full + len(bins)


def claim_for_group(resources: Sequence[PeriodicResource]) -> Tuple[int, Fraction]:
    """(claimed CPUs, allocated bandwidth) for a set of VM interfaces.

    This is the pair plotted as *RT-Xen: Claimed* and *RT-Xen: Allocated*
    in Figure 3.
    """
    interfaces = [
        decompose(r, Fraction(r.budget, r.period)) for r in resources
    ]
    allocated = sum((i.bandwidth for i in interfaces), Fraction(0))
    return claimed_cpus(interfaces), allocated
